"""Tests for administrative (maintenance) reservations."""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.maui.reservations import AdminReservation
from repro.system import BatchSystem


def maintenance(nodes, start, end):
    return AdminReservation(
        cores_by_node={n: 8 for n in nodes}, start=start, end=end
    )


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            AdminReservation(cores_by_node={0: 8}, start=10.0, end=10.0)

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            AdminReservation(cores_by_node={}, start=0.0, end=10.0)

    def test_overlaps(self):
        res = maintenance([0], 100.0, 200.0)
        assert res.overlaps(150.0, 160.0)
        assert res.overlaps(0.0, 101.0)
        assert not res.overlaps(200.0, 300.0)
        assert not res.overlaps(0.0, 100.0)


class TestStaticScheduling:
    def test_job_avoids_future_maintenance_window(self):
        # full-machine maintenance at [100, 200): a 150s job cannot start now
        config = MauiConfig(
            admin_reservations=(maintenance([0, 1], 100.0, 200.0),)
        )
        system = BatchSystem(2, 8, config)
        job = Job(request=ResourceRequest(cores=16), walltime=150.0)
        system.submit(job, FixedRuntimeApp(150.0))
        system.run()
        assert job.start_time == pytest.approx(200.0)

    def test_short_job_fits_before_window(self):
        config = MauiConfig(
            admin_reservations=(maintenance([0, 1], 100.0, 200.0),)
        )
        system = BatchSystem(2, 8, config)
        job = Job(request=ResourceRequest(cores=16), walltime=100.0)
        system.submit(job, FixedRuntimeApp(100.0))
        system.run()
        assert job.start_time == 0.0

    def test_job_routes_around_partial_maintenance(self):
        # only node 0 is down for maintenance: node 1 stays usable
        config = MauiConfig(admin_reservations=(maintenance([0], 100.0, 200.0),))
        system = BatchSystem(2, 8, config)
        job = Job(request=ResourceRequest(cores=8), walltime=500.0)
        system.submit(job, FixedRuntimeApp(500.0))
        system.run(until=0.0)
        assert job.state is JobState.RUNNING
        assert 0 not in job.allocation

    def test_expired_reservation_ignored(self):
        config = MauiConfig(admin_reservations=(maintenance([0, 1], 0.0, 50.0),))
        system = BatchSystem(2, 8, config, start_time=100.0)
        job = Job(request=ResourceRequest(cores=16), walltime=100.0)
        system.submit(job, FixedRuntimeApp(100.0))
        system.run()
        assert job.start_time == pytest.approx(100.0)  # started immediately


class TestDynamicRequests:
    def test_grant_avoids_reserved_node(self):
        # maintenance on node 1 during the evolving job's walltime
        config = MauiConfig(admin_reservations=(maintenance([1], 500.0, 900.0),))
        system = BatchSystem(3, 8, config)
        evo = Job(
            request=ResourceRequest(cores=8),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=8)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        system.run(until=200.0)
        assert evo.dyn_granted == 1
        assert 1 not in evo.allocation  # the grant routed around node 1

    def test_grant_rejected_when_only_reserved_nodes_idle(self):
        config = MauiConfig(admin_reservations=(maintenance([1], 500.0, 900.0),))
        system = BatchSystem(2, 8, config)
        evo = Job(
            request=ResourceRequest(cores=8),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=8)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        system.run(until=300.0)
        assert evo.dyn_granted == 0
        assert evo.dyn_rejected >= 1

    def test_grant_allowed_when_window_after_walltime(self):
        # maintenance begins only after the evolving job's walltime ends
        config = MauiConfig(admin_reservations=(maintenance([1], 2000.0, 3000.0),))
        system = BatchSystem(2, 8, config)
        evo = Job(
            request=ResourceRequest(cores=8),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=8)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        system.run(until=300.0)
        assert evo.dyn_granted == 1
