"""Public API surface tests: the documented imports must keep working."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version():
    import repro

    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.cluster",
        "repro.jobs",
        "repro.rms",
        "repro.rms.accounting",
        "repro.rms.client",
        "repro.maui",
        "repro.apps",
        "repro.workloads",
        "repro.baselines",
        "repro.metrics",
        "repro.experiments",
        "repro.experiments.export",
        "repro.experiments.sweep",
        "repro.cli",
        "repro.system",
        "repro.units",
    ],
)
def test_module_imports_and_exports(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name} declared but missing"


def test_quickstart_snippet_from_readme():
    """The README quickstart must execute as written."""
    from repro import BatchSystem, MauiConfig
    from repro.apps.synthetic import EvolvingWorkApp
    from repro.jobs.evolution import EvolutionProfile
    from repro.rms.client import qsub

    system = BatchSystem(num_nodes=15, cores_per_node=8, config=MauiConfig())
    qsub(system.server, cores=16, walltime=600, user="alice")
    qsub(
        system.server,
        cores=4,
        walltime=900,
        user="carol",
        evolution=EvolutionProfile.esp_default(extra_cores=4),
        app=EvolvingWorkApp(static_runtime=900),
    )
    system.run()
    m = system.metrics()
    assert m.completed_jobs == 2
    assert m.satisfied_dyn_jobs == 1
