"""Tests for node-failure handling (fault tolerance, paper Section I)."""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.cluster.node import NodeState
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.sim.events import EventKind
from repro.system import BatchSystem


def rigid(cores, walltime, user="u"):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user)


class TestNodeFailure:
    def test_affected_jobs_requeued_and_restarted(self, system):
        job = system.submit(rigid(32, 1000), FixedRuntimeApp(400.0))
        system.run(until=100.0)
        failed = job.allocation.node_indices[0]
        system.server.handle_node_failure(failed)
        system.run(until=100.0)
        # the 32-core job cannot restart with one node down (24 cores left)
        assert job.state is JobState.QUEUED
        system.server.recover_node(failed)
        system.run()
        assert job.state is JobState.COMPLETED
        assert job.metadata["node_failures"] == 1

    def test_unaffected_jobs_keep_running(self, system):
        a = system.submit(rigid(8, 1000, "a"), FixedRuntimeApp(1000.0))
        b = system.submit(rigid(8, 1000, "b"), FixedRuntimeApp(1000.0))
        system.run(until=10.0)
        node_a = a.allocation.node_indices[0]
        node_b = b.allocation.node_indices[0]
        assert node_a != node_b
        system.server.handle_node_failure(node_a)
        system.run(until=10.0)
        assert b.state is JobState.RUNNING

    def test_restart_on_surviving_nodes(self, system):
        job = system.submit(rigid(8, 1000), FixedRuntimeApp(300.0))
        system.run(until=50.0)
        failed = job.allocation.node_indices[0]
        system.server.handle_node_failure(failed)
        system.run()
        assert job.state is JobState.COMPLETED
        assert failed not in job.allocation
        # restarted from scratch at t=50
        assert job.end_time == pytest.approx(350.0)

    def test_abort_mode(self, system):
        job = system.submit(rigid(8, 1000), FixedRuntimeApp(300.0))
        system.run(until=50.0)
        failed = job.allocation.node_indices[0]
        system.server.handle_node_failure(failed, requeue=False)
        assert job.state is JobState.ABORTED

    def test_trace_records_failure_and_recovery(self, system):
        job = system.submit(rigid(8, 1000), FixedRuntimeApp(300.0))
        system.run(until=10.0)
        failed = job.allocation.node_indices[0]
        system.server.handle_node_failure(failed)
        system.server.recover_node(failed)
        fails = system.trace.of_kind(EventKind.NODE_FAIL)
        assert fails[0].payload["node"] == failed
        assert fails[0].payload["affected"] == [job.job_id]
        assert system.trace.count(EventKind.NODE_RECOVER) == 1

    def test_failure_of_idle_node_affects_nobody(self, system):
        job = system.submit(rigid(8, 1000), FixedRuntimeApp(300.0))
        system.run(until=10.0)
        idle = next(
            n.index for n in system.cluster.nodes if n.index not in job.allocation
        )
        affected = system.server.handle_node_failure(idle)
        assert affected == []
        assert job.state is JobState.RUNNING
        assert system.cluster.node(idle).state is NodeState.DOWN

    def test_spare_capacity_absorbs_failure(self):
        # with spare nodes, the affected job restarts immediately elsewhere
        system = BatchSystem(4, 8, MauiConfig())
        job = system.submit(rigid(8, 1000), FixedRuntimeApp(200.0))
        system.run(until=20.0)
        failed = job.allocation.node_indices[0]
        system.server.handle_node_failure(failed)
        system.run(until=20.0)
        assert job.state is JobState.RUNNING
        assert failed not in job.allocation


class TestFailureDuringESP:
    def test_esp_survives_mid_run_node_failure(self):
        """Fail a node mid-ESP; the workload still drains consistently."""
        from repro.metrics.validate import validate_trace
        from repro.maui.config import MauiConfig
        from repro.workloads.esp import make_esp_workload

        system = BatchSystem(
            15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
        )
        make_esp_workload(120, dynamic=True, seed=2014).submit_to(system)
        system.engine.at(3000.0, system.server.handle_node_failure, 7)
        system.engine.at(6000.0, system.server.recover_node, 7)
        system.run(max_events=5_000_000)
        jobs = list(system.server.jobs.values())
        assert all(j.is_finished for j in jobs)
        # requeued jobs completed on their second attempt
        requeued = [j for j in jobs if j.metadata.get("node_failures")]
        assert requeued, "the failure should have hit at least one job"
        assert all(j.state is JobState.COMPLETED for j in requeued)
        assert validate_trace(system.trace, system.cluster) == []
        assert system.cluster.used_cores == 0
