"""Tests for the SLURM-style and guaranteeing baselines."""

import pytest

from repro.baselines.guaranteeing import (
    make_guaranteeing_esp_workload,
    run_guaranteeing_esp,
)
from repro.baselines.slurm_style import SlurmEvolvingApp, make_slurm_esp_workload, run_slurm_esp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem
from repro.workloads.esp import ESP_JOB_TYPES, esp_core_count


class TestSlurmEvolvingApp:
    def test_expansion_via_helper_job(self):
        system = BatchSystem(2, 8, MauiConfig())
        app = SlurmEvolvingApp(system, static_runtime=1000.0, extra_cores=4)
        job = Job(request=ResourceRequest(cores=4), walltime=1000.0, user="evo")
        system.submit(job, app)
        system.run()
        # idle machine: the helper starts immediately at the trigger point,
        # so the outcome matches the native tm_dynget path
        assert job.dyn_granted == 1
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(0.16 * 1000 + 0.84 * 1000 * 0.5)

    def test_helper_waits_in_static_queue(self):
        system = BatchSystem(1, 8, MauiConfig())
        app = SlurmEvolvingApp(system, static_runtime=1000.0, extra_cores=4)
        evo = Job(request=ResourceRequest(cores=4), walltime=1000.0, user="evo")
        system.submit(evo, app)
        blocker = Job(request=ResourceRequest(cores=4), walltime=600.0, user="b")
        from repro.apps.synthetic import FixedRuntimeApp

        system.submit(blocker, FixedRuntimeApp(600.0))
        system.run()
        # the helper only starts once the blocker ends at t=600
        assert evo.dyn_granted == 1
        grant_time = 600.0
        expected = grant_time + (1000.0 - grant_time) * 0.5
        assert evo.end_time == pytest.approx(expected)

    def test_helper_cancelled_when_parent_finishes_first(self):
        system = BatchSystem(1, 8, MauiConfig())
        app = SlurmEvolvingApp(system, static_runtime=500.0, extra_cores=4)
        evo = Job(request=ResourceRequest(cores=4), walltime=500.0, user="evo")
        system.submit(evo, app)
        from repro.apps.synthetic import FixedRuntimeApp

        blocker = Job(request=ResourceRequest(cores=4), walltime=2000.0, user="b")
        system.submit(blocker, FixedRuntimeApp(2000.0))
        system.run(until=600.0)
        assert evo.state is JobState.COMPLETED
        assert evo.end_time == pytest.approx(500.0)
        assert app.stub is not None
        assert app.stub.state is JobState.ABORTED  # qdel'd, never ran

    def test_helper_jobs_carry_marker(self):
        system = BatchSystem(2, 8, MauiConfig())
        app = SlurmEvolvingApp(system, static_runtime=1000.0)
        evo = Job(request=ResourceRequest(cores=4), walltime=1000.0, user="evo")
        system.submit(evo, app)
        system.run()
        assert app.stub.metadata["expansion_for"] == evo.job_id


class TestSlurmWorkload:
    def test_workload_shape(self):
        system = BatchSystem(15, 8, MauiConfig())
        wl = make_slurm_esp_workload(system)
        assert wl.total_jobs == 230
        evolving = [s for s in wl if s.evolving]
        assert len(evolving) == 69

    def test_full_run_metrics_exclude_helpers(self):
        metrics = run_slurm_esp(seed=2014)
        assert len(metrics.records) == 230
        assert metrics.completed_jobs == 230
        # the paper's criticism: far fewer expansions arrive on time than
        # with the native dynamic path
        assert 0 <= metrics.satisfied_dyn_jobs < 43


class TestGuaranteeing:
    def test_workload_inflates_evolving_requests(self):
        wl = make_guaranteeing_esp_workload(120, seed=2014)
        by_type = {t.letter: t for t in ESP_JOB_TYPES}
        for spec in wl:
            base = esp_core_count(by_type[spec.esp_type].fraction, 120)
            if by_type[spec.esp_type].is_evolving:
                assert spec.request.cores == base + 4
            else:
                assert spec.request.cores == base

    def test_same_order_as_native_workload(self):
        from repro.workloads.esp import make_esp_workload

        native = [s.esp_type for s in make_esp_workload(120, seed=5)]
        guaranteed = [s.esp_type for s in make_guaranteeing_esp_workload(120, seed=5)]
        assert native == guaranteed

    def test_run_reports_waste(self):
        result = run_guaranteeing_esp(seed=2014)
        assert result.metrics.completed_jobs == 230
        # 69 evolving jobs x 4 cores x 16% of their SET
        expected_waste = sum(
            4 * 0.16 * t.static_execution_time * t.count
            for t in ESP_JOB_TYPES
            if t.is_evolving
        )
        assert result.wasted_reserved_core_seconds == pytest.approx(expected_waste)

    def test_guaranteeing_waits_worse_than_dynamic(self):
        from repro.experiments.runner import run_esp_configuration_cached

        guaranteed = run_guaranteeing_esp(seed=2014)
        dyn_hp = run_esp_configuration_cached("Dyn-HP", seed=2014)
        # Section II-B: preallocation hurts rigid-dominated workloads
        assert guaranteed.metrics.mean_wait > dyn_hp.metrics.mean_wait
