"""Doctest execution for modules with executable examples."""

import doctest

import repro.units


def test_units_doctests():
    results = doctest.testmod(repro.units, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 3  # the module documents its behaviour
