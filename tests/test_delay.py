"""Tests for delay measurement (Algorithm 2's fairness input)."""

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile
from repro.jobs.job import Job
from repro.maui.delay import measure_delays


def profile(nodes=4, cores=8, busy_until=None):
    idx = list(range(nodes))
    prof = AvailabilityProfile(idx, {i: cores for i in idx}, 0.0, {i: cores for i in idx})
    if busy_until:
        for node, until in busy_until.items():
            prof.add_claim(0.0, until, Allocation({node: cores}))
    return prof


def job(cores, walltime=100.0):
    j = Job(request=ResourceRequest(cores=cores), walltime=walltime)
    j.submit_time = 0.0
    return j


class TestMeasureDelays:
    def test_no_queue_no_victims(self):
        assert measure_delays([], profile(), Allocation({0: 4}), 100.0, 0.0, 5) == []

    def test_claim_delays_blocked_job(self):
        # nodes 0-1 busy until 100; queued job needs the whole machine
        prof = profile(busy_until={0: 100.0, 1: 100.0})
        waiting = job(32)
        claim = Allocation({2: 8})  # idle cores the evolving job wants
        victims = measure_delays([waiting], prof, claim, 400.0, 0.0, 5)
        assert len(victims) == 1
        # without the claim the job starts at 100; with it, at 400
        assert victims[0].delay == 300.0

    def test_unaffected_job_has_zero_delay(self):
        prof = profile()
        small = job(4)
        claim = Allocation({3: 8})
        victims = measure_delays([small], prof, claim, 1000.0, 0.0, 5)
        assert victims[0].delay == 0.0

    def test_start_now_job_can_be_delayed(self):
        prof = profile()
        # job fits now only if the claimed cores stay free
        wide = job(32)
        claim = Allocation({0: 8})
        victims = measure_delays([wide], prof, claim, 250.0, 0.0, 5)
        assert victims[0].delay == 250.0

    def test_depth_limits_victims(self):
        prof = profile(busy_until={0: 50.0, 1: 50.0, 2: 50.0})
        queued = [job(32, walltime=10.0) for _ in range(6)]
        victims = measure_delays(queued, prof, Allocation({3: 1}), 60.0, 0.0, 2)
        # 32-core jobs cannot start now: only depth=2 StartLater are planned
        assert len(victims) == 2

    def test_profile_not_mutated(self):
        prof = profile()
        before = prof.free_at(0.0)
        measure_delays([job(32)], prof, Allocation({0: 8}), 500.0, 0.0, 5)
        assert prof.free_at(0.0) == before

    def test_claim_ending_before_start_no_delay(self):
        # claim ends at t=10; the blocked job could only start at t=100 anyway
        prof = profile(busy_until={0: 100.0, 1: 100.0, 2: 100.0})
        blocked = job(32)
        victims = measure_delays([blocked], prof, Allocation({3: 8}), 10.0, 0.0, 5)
        assert victims[0].delay == 0.0

    def test_multiple_victims_ordered_delays(self):
        prof = profile(busy_until={0: 100.0, 1: 100.0})
        first, second = job(32, walltime=50.0), job(32, walltime=50.0)
        claim = Allocation({2: 8})
        victims = measure_delays([first, second], prof, claim, 300.0, 0.0, 5)
        by_job = {v.job: v.delay for v in victims}
        # both pushed from (100, 150) to (300, 350)
        assert by_job[first] == 200.0
        assert by_job[second] == 200.0
