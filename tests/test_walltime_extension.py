"""Tests for runtime elasticity in the time dimension (tm_extend_walltime).

After Kumar et al. (IPDPSW 2012), the paper's ref. [23]: jobs extend their
walltime instead of consuming more resources.  The extension goes through
the same dynamic queue and DFS fairness machinery as resource requests.
"""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import DFSConfig, DFSPolicy, MauiConfig, PrincipalLimits
from repro.rms.tm import TMContext
from repro.system import BatchSystem


class OverrunningApp:
    """Needs 400s but asked only for 300s; requests +200s at t=250."""

    def __init__(self, true_runtime=400.0, ask_at=250.0, extra=200.0):
        self.true_runtime = true_runtime
        self.ask_at = ask_at
        self.extra = extra
        self.granted = None

    def launch(self, ctx: TMContext) -> None:
        self.ctx = ctx
        ctx.after(self.ask_at, self._ask)
        ctx.after(self.true_runtime, ctx.finish)

    def _ask(self) -> None:
        if self.ctx.job.is_active:
            self.ctx.tm_extend_walltime(self.extra, self._answer)

    def _answer(self, grant) -> None:
        self.granted = grant is not None


def overrunner(walltime=300.0, user="late"):
    return Job(
        request=ResourceRequest(cores=8),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
    )


class TestExtensionGrant:
    def test_extension_saves_job_from_walltime_kill(self, system):
        app = OverrunningApp()
        job = system.submit(overrunner(), app)
        system.run()
        assert app.granted is True
        assert job.walltime == 500.0
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(400.0)

    def test_without_extension_the_job_dies(self, system):
        job = system.submit(overrunner(), FixedRuntimeApp(400.0))
        system.run()
        assert job.state is JobState.ABORTED
        assert job.end_time == pytest.approx(300.0)

    def test_extension_counts_as_grant(self, system):
        job = system.submit(overrunner(), OverrunningApp())
        system.run()
        assert job.dyn_granted == 1
        assert system.scheduler.stats["dyn_granted"] == 1

    def test_invalid_extension_rejected(self, system):
        job = system.submit(overrunner(), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        ctx = system.server._contexts[job.job_id]
        with pytest.raises(ValueError):
            ctx.tm_extend_walltime(0.0, lambda g: None)


class TestExtensionFairness:
    def _system(self, cap):
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                default_user=PrincipalLimits(target_delay_time=cap),
            )
        )
        return BatchSystem(1, 8, config)

    def test_extension_delaying_queued_job_vetoed(self):
        system = self._system(cap=1.0)
        app = OverrunningApp()
        job = system.submit(overrunner(), app)
        # the waiting job would start at t=300 (old walltime end); the
        # extension pushes it to t=500 — a 200s delay against a 1s cap
        waiting = system.submit(
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="w"),
            FixedRuntimeApp(100.0),
        )
        system.run()
        assert app.granted is False
        assert job.state is JobState.ABORTED  # killed at the original limit
        assert waiting.start_time == pytest.approx(300.0)

    def test_extension_allowed_when_nobody_waits(self):
        system = self._system(cap=1.0)
        app = OverrunningApp()
        job = system.submit(overrunner(), app)
        system.run()
        assert app.granted is True
        assert job.state is JobState.COMPLETED

    def test_same_user_waiter_exempt(self):
        system = self._system(cap=1.0)
        app = OverrunningApp()
        job = system.submit(overrunner(user="same"), app)
        system.submit(
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="same"),
            FixedRuntimeApp(100.0),
        )
        system.run()
        assert app.granted is True
