"""Tests for the always-on scheduler service (``repro.service``).

The headline contract is bit-identity: ESP runs driven through
:class:`SchedulerService` on the simulator backend must reproduce the
direct :class:`BatchSystem` schedules exactly — same ``(submit, start,
end, state)`` tuple per job, byte-identical trace/ledger exports.  The
rest covers the tenant API (admission throttling, cancel, queries,
dynamic grants) and the replay backend's shadow scheduling.
"""

import asyncio
import itertools

import pytest

import repro.jobs.job as jobmod
from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import JobState
from repro.maui.config import MauiConfig
from repro.service import (
    AdmissionError,
    AdmissionPolicy,
    PolicyCore,
    ReplayBackend,
    SchedulerService,
    ServiceClosed,
    SimBackend,
    UnknownJob,
    make_backend,
    parse_request,
    principal_of,
)
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload
from repro.workloads.spec import JobSpec

#: compact machine for the identity runs — same shape as the paper's
#: testbed but 4 nodes, so a full ESP pass stays fast enough for tier-1
NODES, PPN = 4, 8
DYN_CONFIG = MauiConfig(reservation_depth=5, reservation_delay_depth=5)


def reset_job_ids():
    """Job ids are process-global; identical runs need identical ids."""
    jobmod._job_counter = itertools.count(1)


def spec(submit=0.0, cores=4, walltime=100.0, runtime=None, user="u", account=None):
    rt = walltime if runtime is None else runtime
    return JobSpec(
        submit_time=submit,
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        account=account,
        app_factory=(lambda: FixedRuntimeApp(rt)),
    )


def policy_stats(stats):
    """Scheduler stats minus wall-clock timers (nondeterministic)."""
    return {k: v for k, v in dict(stats).items() if not k.endswith("_seconds")}


def schedule_of(jobs):
    return sorted(
        (j.job_id, j.submit_time, j.start_time, j.end_time, j.state.value)
        for j in jobs
    )


def run_direct(dynamic, *, config=None, telemetry=None):
    reset_job_ids()
    system = BatchSystem(NODES, PPN, config, telemetry=telemetry)
    make_esp_workload(NODES * PPN, dynamic=dynamic, seed=2014).submit_to(system)
    system.run(max_events=5_000_000)
    return system


def run_via_service(dynamic, *, config=None, telemetry=None):
    reset_job_ids()
    backend = SimBackend(
        num_nodes=NODES, cores_per_node=PPN, config=config, telemetry=telemetry
    )
    workload = make_esp_workload(NODES * PPN, dynamic=dynamic, seed=2014)

    async def drive():
        async with SchedulerService(backend) as service:
            for job_spec in workload:
                await service.submit(job_spec)
            await service.drain()

    asyncio.run(drive())
    return backend


class TestBitIdentity:
    @pytest.mark.parametrize("dynamic", [False, True], ids=["static", "dynamic"])
    def test_esp_schedule_identical(self, dynamic):
        config = DYN_CONFIG if dynamic else None
        direct = run_direct(dynamic, config=config)
        via = run_via_service(dynamic, config=config)
        want = schedule_of(direct.server.jobs.values())
        got = schedule_of(via.core.server.jobs.values())
        assert want, "direct run produced no jobs"
        assert got == want

    def test_scheduler_stats_identical(self):
        direct = run_direct(True, config=DYN_CONFIG)
        via = run_via_service(True, config=DYN_CONFIG)
        assert policy_stats(via.core.scheduler.stats) == policy_stats(
            direct.scheduler.stats
        )

    def test_exports_byte_identical(self, tmp_path):
        from repro.obs import Telemetry, export_jsonl

        dumps = {}
        for label, runner in (("direct", run_direct), ("service", run_via_service)):
            telemetry = Telemetry(decision_ledger=True)
            run = runner(True, config=DYN_CONFIG, telemetry=telemetry)
            trace = run.trace if label == "direct" else run.core.trace
            export_jsonl(trace, tmp_path / f"{label}.trace.jsonl")
            telemetry.ledger.export_jsonl(tmp_path / f"{label}.ledger.jsonl")
            dumps[label] = (
                (tmp_path / f"{label}.trace.jsonl").read_bytes(),
                (tmp_path / f"{label}.ledger.jsonl").read_bytes(),
            )
        assert dumps["service"][0] == dumps["direct"][0]
        assert dumps["service"][1] == dumps["direct"][1]

    def test_runner_helper_matches_direct_metrics(self):
        from repro.experiments.configs import all_configurations
        from repro.experiments.runner import (
            run_esp_configuration,
            run_esp_configuration_via_service,
        )

        cfg = next(c for c in all_configurations() if c.name == "Dyn-HP")
        reset_job_ids()
        direct = run_esp_configuration(cfg, num_nodes=NODES, cores_per_node=PPN)
        reset_job_ids()
        via = run_esp_configuration_via_service(
            cfg, num_nodes=NODES, cores_per_node=PPN
        )
        assert via.metrics.workload_time == direct.metrics.workload_time
        assert via.metrics.satisfied_dyn_jobs == direct.metrics.satisfied_dyn_jobs
        assert via.metrics.utilization == direct.metrics.utilization
        assert policy_stats(via.scheduler_stats) == policy_stats(
            direct.scheduler_stats
        )


class TestTenantApi:
    def drive(self, coro):
        return asyncio.run(coro)

    def test_submit_drain_complete(self):
        backend = SimBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())

        async def scenario():
            async with SchedulerService(backend) as service:
                infos = [await service.submit(spec(cores=8)) for _ in range(2)]
                assert all(i.state == "queued" for i in infos)
                processed = await service.drain()
                assert processed > 0
                return [await service.job_info(i.job_id) for i in infos]

        finals = self.drive(scenario())
        assert all(i.state == "completed" for i in finals)
        assert all(i.end_time is not None for i in finals)

    def test_queue_info_counts(self):
        backend = SimBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())

        async def scenario():
            async with SchedulerService(backend) as service:
                for user in ("ann", "bob", "bob"):
                    await service.submit(spec(cores=4, user=user))
                before = await service.queue_info()
                await service.drain()
                after = await service.queue_info()
                return before, after

        before, after = self.drive(scenario())
        assert before.queued == 3 and before.total_jobs == 3
        assert before.open_by_principal == {"ann": 1, "bob": 2}
        assert after.finished == 3 and after.pending_events == 0
        assert after.open_by_principal == {}

    def test_cancel_queued_job(self):
        backend = SimBackend(num_nodes=1, cores_per_node=8, config=MauiConfig())

        async def scenario():
            async with SchedulerService(backend) as service:
                # the second 8-core job must wait behind the first: cancellable
                await service.submit(spec(cores=8, walltime=50.0))
                victim = await service.submit(spec(cores=8, walltime=50.0))
                info = await service.cancel(victim.job_id, "user abort")
                await service.drain()
                return info, await service.job_info(victim.job_id)

        cancelled, final = self.drive(scenario())
        assert cancelled.state == JobState.ABORTED.value
        assert final.start_time is None
        assert backend.core.server.jobs[cancelled.job_id].state is JobState.ABORTED

    def test_unknown_job_raises(self):
        backend = SimBackend(num_nodes=1, cores_per_node=8)

        async def scenario():
            async with SchedulerService(backend) as service:
                with pytest.raises(UnknownJob):
                    await service.job_info("nope-42")
                with pytest.raises(UnknownJob):
                    await service.cancel("nope-42")

        self.drive(scenario())

    def test_closed_service_raises(self):
        backend = SimBackend(num_nodes=1, cores_per_node=8)
        service = SchedulerService(backend)

        async def unstarted():
            await service.submit(spec())

        with pytest.raises(ServiceClosed):
            asyncio.run(unstarted())

        async def stopped():
            async with service:
                pass
            await service.queue_info()

        with pytest.raises(ServiceClosed):
            asyncio.run(stopped())

    def test_request_grow_granted(self):
        backend = SimBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())

        async def scenario():
            async with SchedulerService(backend) as service:
                info = await service.submit(spec(cores=4, walltime=500.0))
                await service.run_until(1.0)  # job starts at t=0
                assert (await service.job_info(info.job_id)).state == "running"
                grow = asyncio.create_task(service.request_grow(info.job_id, 4))
                await asyncio.sleep(0)  # let the task enter the request
                await service.drain()
                return await grow, await service.job_info(info.job_id)

        result, final = self.drive(scenario())
        assert result.granted and result.cores == 4
        assert final.dyn_granted >= 1
        assert backend.core.server.jobs[result.job_id].state is JobState.COMPLETED

    def test_request_grow_validates_cores(self):
        backend = SimBackend(num_nodes=1, cores_per_node=8)

        async def scenario():
            async with SchedulerService(backend) as service:
                with pytest.raises(ValueError):
                    await service.request_grow("j", 0)

        self.drive(scenario())

    def test_run_until_bounds_the_clock(self):
        backend = SimBackend(num_nodes=1, cores_per_node=8, config=MauiConfig())

        async def scenario():
            async with SchedulerService(backend) as service:
                await service.submit(spec(cores=8, walltime=100.0))
                await service.submit(spec(submit=300.0, cores=8, walltime=100.0))
                await service.run_until(150.0)
                mid = await service.queue_info()
                await service.drain()
                return mid, await service.queue_info()

        mid, end = self.drive(scenario())
        assert mid.finished == 1 and mid.pending_events > 0
        assert mid.now <= 150.0
        assert end.finished == 2 and end.pending_events == 0

    def test_batch_events_validated(self):
        with pytest.raises(ValueError):
            SchedulerService(SimBackend(num_nodes=1, cores_per_node=8), batch_events=0)


class TestAdmission:
    def test_principal_resolution(self):
        assert principal_of("ann", None) == "ann"
        assert principal_of("ann", "default") == "ann"
        assert principal_of("ann", "proj7") == "proj7"

    def test_policy_validates_limits(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_open_per_account=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_total_open=-1)

    def test_policy_check(self):
        policy = AdmissionPolicy(max_open_per_account=2, max_total_open=3)
        policy.check("ann", 1, 2)  # under both limits
        with pytest.raises(AdmissionError):
            policy.check("ann", 2, 2)
        with pytest.raises(AdmissionError):
            policy.check("ann", 1, 3)

    def test_service_throttles_per_principal(self):
        backend = SimBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())
        policy = AdmissionPolicy(max_open_per_account=1)

        async def scenario():
            async with SchedulerService(backend, admission=policy) as service:
                await service.submit(spec(cores=4, user="ann"))
                with pytest.raises(AdmissionError) as excinfo:
                    await service.submit(spec(cores=4, user="ann"))
                # other principals (and ann's account-carrying jobs) admitted
                await service.submit(spec(cores=4, user="bob"))
                await service.submit(spec(cores=4, user="ann", account="proj7"))
                # once ann's job finishes, the open slot frees up
                await service.drain()
                await service.submit(spec(cores=4, user="ann"))
                await service.drain()
                return excinfo.value, service.stats

        error, stats = asyncio.run(scenario())
        assert error.principal == "ann"
        assert stats["submitted"] == 4
        assert stats["admission_rejected"] == 1

    def test_default_policy_admits_everything(self):
        policy = AdmissionPolicy()
        policy.check("anyone", 10_000, 10_000)


class TestReplayBackend:
    def record_source_run(self):
        reset_job_ids()
        system = BatchSystem(2, 8, MauiConfig())
        for cores, walltime, runtime in ((8, 100.0, 80.0), (16, 60.0, 60.0), (4, 50.0, 10.0)):
            system.submit(
                jobmod.Job(request=ResourceRequest(cores=cores), walltime=walltime),
                FixedRuntimeApp(runtime),
            )
        system.run()
        return system

    def test_shadow_schedule_matches_recording(self):
        source = self.record_source_run()
        recorded = schedule_of(source.server.jobs.values())
        reset_job_ids()
        backend = ReplayBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())
        specs = backend.ingest(list(source.trace))

        async def drive():
            async with SchedulerService(backend) as service:
                await service.drain()

        asyncio.run(drive())
        assert len(specs) == 3
        # same machine + same policy + recorded runtimes → same schedule
        assert schedule_of(backend.core.server.jobs.values()) == recorded

    def test_ingest_accepts_jsonl_rows(self, tmp_path):
        from repro.obs import export_jsonl
        from repro.obs.exporters import read_jsonl

        source = self.record_source_run()
        dump = tmp_path / "trace.jsonl"
        export_jsonl(source.trace, dump)
        reset_job_ids()
        backend = ReplayBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())
        specs = backend.ingest(read_jsonl(dump))
        assert [s.request.total_cores for s in specs] == [8, 16, 4]

    def test_malformed_row_rejected(self):
        backend = ReplayBackend(num_nodes=1, cores_per_node=8)
        with pytest.raises(ValueError):
            backend.ingest([{"kind": "job_submit"}])  # no timestamp

    def test_recorded_runtime_preserved(self):
        source = self.record_source_run()
        reset_job_ids()
        backend = ReplayBackend(num_nodes=2, cores_per_node=8, config=MauiConfig())
        backend.ingest(list(source.trace))

        async def drive():
            async with SchedulerService(backend) as service:
                await service.drain()

        asyncio.run(drive())
        by_id = backend.core.server.jobs
        runs = sorted(
            (j.end_time - j.start_time)
            for j in by_id.values()
            if j.start_time is not None and j.end_time is not None
        )
        assert runs == pytest.approx([10.0, 60.0, 80.0])


class TestBackendPlumbing:
    def test_parse_request_roundtrip(self):
        for request in (ResourceRequest(cores=12), ResourceRequest(nodes=3, ppn=4)):
            assert parse_request(str(request)) == request

    def test_parse_request_rejects_garbage(self):
        for text in ("", "cores=4", "nodes=x:ppn=2", "procs=abc"):
            with pytest.raises(ValueError):
                parse_request(text)

    def test_make_backend(self):
        assert isinstance(make_backend("sim"), SimBackend)
        assert isinstance(make_backend("replay"), ReplayBackend)
        with pytest.raises(ValueError):
            make_backend("slurm")

    def test_sim_backend_rejects_core_and_kwargs(self):
        core = PolicyCore(num_nodes=1, cores_per_node=8)
        with pytest.raises(ValueError):
            SimBackend(core, num_nodes=2)

    def test_backend_protocol_satisfied(self):
        from repro.service import Backend

        assert isinstance(SimBackend(num_nodes=1, cores_per_node=8), Backend)

    def test_batch_system_facade_delegates_to_core(self):
        system = BatchSystem(2, 8, MauiConfig())
        assert isinstance(system.core, PolicyCore)
        assert system.server is system.core.server
        assert system.scheduler is system.core.scheduler
        assert system.engine is system.core.engine
        assert system.trace is system.core.trace
