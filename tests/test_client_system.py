"""Tests for the client helpers (qsub/qstat) and the BatchSystem facade."""

import pytest

from repro.apps.synthetic import EvolvingWorkApp
from repro.cluster.machine import Cluster
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.rms.client import qstat, qstat_table, qsub
from repro.system import BatchSystem


class TestQsub:
    def test_cores_request(self, system):
        job = qsub(system.server, cores=8, walltime=100, user="alice")
        assert job.request.cores == 8
        assert job.user == "alice"
        assert job.flexibility is JobFlexibility.RIGID

    def test_nodes_ppn_request(self, system):
        job = qsub(system.server, nodes=2, ppn=8, walltime="01:00:00")
        assert job.request.is_shaped
        assert job.walltime == 3600.0

    def test_walltime_string_parsing(self, system):
        job = qsub(system.server, cores=1, walltime="30:00")
        assert job.walltime == 1800.0

    def test_evolving_flag(self, system):
        job = qsub(system.server, cores=4, walltime=100, evolving=True)
        assert job.flexibility is JobFlexibility.EVOLVING

    def test_evolution_profile_implies_evolving(self, system):
        job = qsub(
            system.server,
            cores=4,
            walltime=100,
            evolution=EvolutionProfile.esp_default(),
            app=EvolvingWorkApp(100),
        )
        assert job.is_evolving

    def test_metadata_kwargs(self, system):
        job = qsub(system.server, cores=1, walltime=10, project="X17")
        assert job.metadata["project"] == "X17"

    def test_top_priority(self, system):
        job = qsub(system.server, cores=1, walltime=10, top_priority=True)
        assert job.top_priority


class TestQstat:
    def test_states_reported(self, system):
        a = qsub(system.server, cores=32, walltime=100, user="a")
        b = qsub(system.server, cores=32, walltime=100, user="b")
        system.run(until=0.0)
        rows = {r["job_id"]: r for r in qstat(system.server)}
        assert rows[a.job_id]["state"] == "R"
        assert rows[b.job_id]["state"] == "Q"
        assert rows[a.job_id]["cores_held"] == 32
        assert rows[b.job_id]["cores_held"] == 0

    def test_completed_jobs_hold_nothing(self, system):
        a = qsub(system.server, cores=8, walltime=100, user="a")
        system.run()
        row = qstat(system.server)[0]
        assert row["state"] == "C"
        assert row["cores_held"] == 0

    def test_table_renders(self, system):
        qsub(system.server, cores=8, walltime=100, user="someone")
        text = qstat_table(system.server)
        assert "someone" in text
        assert "Job ID" in text


class TestBatchSystemFacade:
    def test_default_construction(self):
        system = BatchSystem()
        assert system.cluster.total_cores == 120  # the paper's machine
        assert system.config.dynamic_enabled

    def test_custom_cluster(self):
        cluster = Cluster.homogeneous(3, 4)
        system = BatchSystem(cluster=cluster)
        assert system.cluster is cluster

    def test_partition_config_fences_one_node(self):
        system = BatchSystem(4, 8, MauiConfig(use_dynamic_partition=True))
        assert sum(1 for n in system.cluster.nodes if n.partition == "dynamic") == 1

    def test_submit_at_schedules_future_submission(self, system):
        from repro.cluster.allocation import ResourceRequest
        from repro.jobs.job import Job

        job = Job(request=ResourceRequest(cores=1), walltime=10.0)
        system.submit_at(50.0, job)
        system.run(until=49.0)
        assert job.job_id not in system.server.jobs
        system.run()
        assert job.state is JobState.COMPLETED
        assert job.submit_time == 50.0

    def test_now_property(self, system):
        assert system.now == 0.0
        system.engine.at(5.0, lambda: None)
        system.run()
        assert system.now == 5.0

    def test_start_time_offset(self):
        system = BatchSystem(2, 4, start_time=1000.0)
        job = qsub(system.server, cores=4, walltime=60)
        system.run()
        assert job.submit_time == 1000.0
        assert job.end_time == 1060.0

    def test_metrics_shortcut(self, system):
        qsub(system.server, cores=8, walltime=100)
        system.run()
        m = system.metrics()
        assert m.completed_jobs == 1


class TestQsubExtensions:
    def test_min_cores_makes_moldable(self, system):
        job = qsub(system.server, cores=8, walltime=100, min_cores=4)
        assert job.flexibility is JobFlexibility.MOLDABLE
        assert job.moldable_floor == 4

    def test_dependency_kwargs(self, system):
        first = qsub(system.server, cores=4, walltime=100)
        second = qsub(
            system.server, cores=4, walltime=100,
            depends_on=first.job_id, dependency_type="afterany",
        )
        assert second.depends_on == first.job_id
        assert second.dependency_type == "afterany"


class TestQalter:
    def test_alter_walltime_and_cores(self, system):
        from repro.rms.client import qalter

        job = qsub(system.server, cores=64, walltime=100)  # cannot fit: 32-core box
        system.run(until=0.0)
        assert job.state is JobState.QUEUED
        qalter(system.server, job, walltime="00:05:00", cores=16)
        system.run()
        assert job.walltime == 300.0
        assert job.state is JobState.COMPLETED

    def test_alter_running_job_rejected(self, system):
        from repro.rms.client import qalter

        job = qsub(system.server, cores=8, walltime=100)
        system.run(until=0.0)
        with pytest.raises(RuntimeError):
            qalter(system.server, job, walltime=50)

    def test_alter_shaped_to_cores_rejected(self, system):
        from repro.rms.client import qalter

        blocker = qsub(system.server, cores=32, walltime=500)
        job = qsub(system.server, nodes=2, ppn=8, walltime=100)
        system.run(until=0.0)
        with pytest.raises(ValueError):
            qalter(system.server, job, cores=4)

    def test_invalid_walltime_rejected(self, system):
        from repro.rms.client import qalter

        blocker = qsub(system.server, cores=32, walltime=500)
        job = qsub(system.server, cores=8, walltime=100)
        system.run(until=0.0)
        with pytest.raises(ValueError):
            qalter(system.server, job, walltime=0)
