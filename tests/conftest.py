"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.machine import Cluster
from repro.maui.config import MauiConfig
from repro.sim.engine import Engine
from repro.system import BatchSystem


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def small_cluster() -> Cluster:
    """4 nodes x 8 cores: big enough for interesting packing, small enough
    to reason about by hand."""
    return Cluster.homogeneous(4, 8)


@pytest.fixture
def system() -> BatchSystem:
    """A default 4x8 batch system (dynamic allocation on, no fairness)."""
    return BatchSystem(num_nodes=4, cores_per_node=8, config=MauiConfig())


@pytest.fixture
def paper_system() -> BatchSystem:
    """The paper's 15x8 testbed with ReservationDepth=ReservationDelayDepth=5."""
    return BatchSystem(
        num_nodes=15,
        cores_per_node=8,
        config=MauiConfig(reservation_depth=5, reservation_delay_depth=5),
    )
