"""Tests for the Gantt renderer and SWF import/export."""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.metrics.gantt import render_gantt
from repro.system import BatchSystem
from repro.workloads.swf import from_swf, to_swf


def run_small_system():
    system = BatchSystem(2, 8, MauiConfig())
    a = system.submit(
        Job(request=ResourceRequest(cores=8), walltime=100.0, user="a"),
        FixedRuntimeApp(100.0),
    )
    b = system.submit(
        Job(request=ResourceRequest(cores=16), walltime=50.0, user="b"),
        FixedRuntimeApp(50.0),
    )
    system.run()
    return system, a, b


class TestGantt:
    def test_rows_per_node(self):
        system, *_ = run_small_system()
        text = render_gantt(system.trace, system.cluster, width=40)
        lines = text.splitlines()
        node_rows = [l for l in lines if l.startswith("node")]
        assert len(node_rows) == 2
        assert all(len(l.split("|")[1]) == 40 for l in node_rows)

    def test_legend_lists_jobs(self):
        system, a, b = run_small_system()
        text = render_gantt(system.trace, system.cluster)
        assert a.job_id in text and b.job_id in text

    def test_idle_dots_after_jobs_end(self):
        system, *_ = run_small_system()
        text = render_gantt(system.trace, system.cluster, until=200.0, width=20)
        # a runs 0-100, b runs 100-150 (needs all 16 cores): idle after t=150
        row = next(l for l in text.splitlines() if l.startswith("node000"))
        cells = row.split("|")[1]
        assert set(cells[16:]) == {"."}
        assert cells[0] != "."

    def test_expansion_visible(self):
        system = BatchSystem(2, 8, MauiConfig())
        evo = system.submit(
            Job(
                request=ResourceRequest(nodes=1, ppn=8),
                walltime=1000.0,
                user="evo",
                flexibility=JobFlexibility.EVOLVING,
                evolution=EvolutionProfile.single(0.5, ResourceRequest(nodes=1, ppn=8)),
            ),
            EvolvingWorkApp(1000.0),
        )
        system.run()
        text = render_gantt(system.trace, system.cluster, width=20, labels={evo.job_id: "E"})
        rows = {l.split(" |")[0]: l.split("|")[1] for l in text.splitlines() if l.startswith("node")}
        # node 0 busy from the start; node 1 only after the mid-run expansion
        assert rows["node000"][0] == "E"
        assert rows["node001"][0] == "."
        assert "E" in rows["node001"]

    def test_empty_trace(self):
        system = BatchSystem(2, 8, MauiConfig())
        assert "empty schedule" in render_gantt(system.trace, system.cluster)


class TestSWFExport:
    def test_roundtrip_fields(self):
        system, a, b = run_small_system()
        text = to_swf(system.metrics())
        lines = [l for l in text.splitlines() if l and not l.startswith(";")]
        assert len(lines) == 2
        first = lines[0].split()
        assert len(first) == 18
        assert int(first[0]) == 1          # job number
        assert int(first[3]) == 100        # runtime of job a
        assert int(first[4]) == 8          # processors
        assert int(first[10]) == 1         # completed status

    def test_header_comments(self):
        system, *_ = run_small_system()
        text = to_swf(system.metrics())
        assert text.startswith(";")
        assert "MaxProcs: 16" in text

    def test_unstarted_job_fields(self):
        system = BatchSystem(1, 4, MauiConfig())
        job = system.submit(Job(request=ResourceRequest(cores=4), walltime=10.0))
        system.server.cancel_queued(job)
        system.run()
        line = [
            l for l in to_swf(system.metrics()).splitlines() if not l.startswith(";")
        ][0]
        fields = line.split()
        assert int(fields[3]) == -1  # unknown runtime (never started)
        assert int(fields[10]) == 5  # cancelled (aborted before it ever started)


class TestSWFRoundTrip:
    """Walltime (field 9) and status (field 11) survive export → import."""

    def test_walltime_exported_as_requested_time(self):
        system, a, b = run_small_system()
        lines = [
            l for l in to_swf(system.metrics()).splitlines() if not l.startswith(";")
        ]
        assert int(lines[0].split()[8]) == 100
        assert int(lines[1].split()[8]) == 50

    def test_roundtrip_preserves_walltime(self):
        # with field 9 populated, import uses it directly — no
        # walltime_factor fallback inflating the reimported limits
        system, *_ = run_small_system()
        wl = from_swf(to_swf(system.metrics()))
        assert [(s.submit_time, s.request.cores, s.walltime) for s in wl.specs] == [
            (0.0, 8, 100.0),
            (0.0, 16, 50.0),
        ]

    def test_overrun_abort_is_failure_status(self):
        system = BatchSystem(1, 8, MauiConfig())
        system.submit(
            Job(request=ResourceRequest(cores=8), walltime=10.0),
            FixedRuntimeApp(50.0),  # overruns: killed at the walltime limit
        )
        system.run()
        fields = [
            l for l in to_swf(system.metrics()).splitlines() if not l.startswith(";")
        ][0].split()
        assert int(fields[10]) == 0  # started then aborted: a failure
        assert int(fields[3]) == 10  # ran exactly to its limit

    def test_cancelled_before_start_is_status_5(self):
        system = BatchSystem(1, 4, MauiConfig())
        job = system.submit(Job(request=ResourceRequest(cores=4), walltime=10.0))
        system.server.cancel_queued(job)
        system.run()
        fields = [
            l for l in to_swf(system.metrics()).splitlines() if not l.startswith(";")
        ][0].split()
        assert int(fields[10]) == 5

    def test_completed_is_status_1(self):
        system, *_ = run_small_system()
        for line in to_swf(system.metrics()).splitlines():
            if not line.startswith(";"):
                assert int(line.split()[10]) == 1


class TestSWFImport:
    SAMPLE = """\
; sample trace
1 0 -1 100 8 -1 -1 8 120 -1 1 3 3 -1 -1 -1 -1 -1
2 30 -1 50 4 -1 -1 -1 -1 -1 1 4 4 -1 -1 -1 -1 -1
3 60 -1 -1 4 -1 -1 4 100 -1 0 3 3 -1 -1 -1 -1 -1
"""

    def test_parses_valid_jobs(self):
        wl = from_swf(self.SAMPLE)
        # job 3 has runtime -1 and is skipped
        assert wl.total_jobs == 2
        first = wl.specs[0]
        assert first.request.cores == 8
        assert first.walltime == 120.0
        assert first.user == "swf_user003"

    def test_fallbacks(self):
        wl = from_swf(self.SAMPLE)
        second = wl.specs[1]
        assert second.request.cores == 4  # falls back to allocated procs
        # no requested time: walltime_factor applies, floored by the default
        assert second.walltime == pytest.approx(3600.0)
        tight = from_swf(self.SAMPLE, default_walltime=10.0)
        assert tight.specs[1].walltime == pytest.approx(50 * 1.2)

    def test_max_jobs(self):
        assert from_swf(self.SAMPLE, max_jobs=1).total_jobs == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            from_swf("1 2 3\n")

    def test_replay_through_batch_system(self):
        system = BatchSystem(2, 8, MauiConfig())
        jobs = from_swf(self.SAMPLE).submit_to(system)
        system.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # runtimes honoured
        assert jobs[0].end_time - jobs[0].start_time == pytest.approx(100.0)

    def test_export_import_roundtrip(self):
        system, *_ = run_small_system()
        wl = from_swf(to_swf(system.metrics()))
        assert wl.total_jobs == 2
        replay = BatchSystem(2, 8, MauiConfig())
        jobs = wl.submit_to(replay)
        replay.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)


class TestSWFStreaming:
    SAMPLE = TestSWFImport.SAMPLE

    def test_stream_from_file_all_chunk_sizes(self, tmp_path):
        """Every chunk size — including ones that split a record mid-field —
        must reassemble the spanning record and parse identically."""
        path = tmp_path / "trace.swf"
        path.write_text(self.SAMPLE)
        baseline = from_swf(self.SAMPLE)
        for chunk_size in range(1, len(self.SAMPLE) + 2):
            with open(path) as fh:
                wl = from_swf(fh, chunk_size=chunk_size)
            assert wl.total_jobs == baseline.total_jobs, chunk_size
            assert [
                (s.submit_time, s.request.cores, s.walltime, s.user)
                for s in wl.specs
            ] == [
                (s.submit_time, s.request.cores, s.walltime, s.user)
                for s in baseline.specs
            ], chunk_size

    def test_chunk_boundary_splits_record(self, tmp_path):
        # pin the interesting case explicitly: the boundary lands inside
        # the second record, splitting a numeric field in two
        path = tmp_path / "trace.swf"
        path.write_text(self.SAMPLE)
        first_record_end = self.SAMPLE.index("\n", self.SAMPLE.index("\n1 ")) + 1
        chunk_size = first_record_end + 10  # 10 chars into record two
        with open(path) as fh:
            wl = from_swf(fh, chunk_size=chunk_size)
        assert wl.total_jobs == 2
        assert wl.specs[1].submit_time == 30.0

    def test_stream_from_iterable_of_lines(self):
        wl = from_swf(iter(self.SAMPLE.splitlines(keepends=True)))
        assert wl.total_jobs == 2

    def test_max_jobs_stops_reading(self):
        """max_jobs must not consume the source past what it needs —
        archive-scale traces are only read as far as the import goes."""
        consumed = 0

        def lines():
            nonlocal consumed
            for line in self.SAMPLE.splitlines():
                consumed += 1
                yield line

        wl = from_swf(lines(), max_jobs=1)
        assert wl.total_jobs == 1
        assert consumed < len(self.SAMPLE.splitlines())

    def test_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(self.SAMPLE.rstrip("\n"))
        with open(path) as fh:
            assert from_swf(fh, chunk_size=7).total_jobs == 2
