"""Streaming trace pipeline: subscribers, ring buffer, JSONL, no-op path."""

import io

import pytest

from repro.obs import (
    JsonlTraceWriter,
    Telemetry,
    export_jsonl,
    read_jsonl,
)
from repro.sim.events import EventKind, TraceLog
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload


def run_system(telemetry=None, trace_maxlen=None, *, seed=3, num_jobs=40):
    system = BatchSystem(4, 8, telemetry=telemetry, trace_maxlen=trace_maxlen)
    make_random_workload(
        num_jobs,
        32,
        evolving_share=0.4,
        mean_interarrival=30.0,
        size_range=(1, 16),
        seed=seed,
    ).submit_to(system)
    system.run(max_events=1_000_000)
    return system


def normalized(events):
    """Events with job ids renamed by first appearance (seq is process-global)."""
    ids: dict = {}
    out = []
    for e in events:
        payload = {
            k: (ids.setdefault(v, f"J{len(ids)}") if k == "job_id" else v)
            for k, v in e.payload.items()
        }
        out.append((e.time, e.kind, payload))
    return out


class TestSubscribers:
    def test_fanout_is_synchronous_and_in_subscription_order(self):
        log = TraceLog()
        calls: list[tuple[str, float]] = []
        log.subscribe(lambda e: calls.append(("first", e.time)))
        log.subscribe(lambda e: calls.append(("second", e.time)))
        log.record(1.0, EventKind.JOB_SUBMIT, job_id="j")
        log.record(2.0, EventKind.JOB_START, job_id="j")
        assert calls == [
            ("first", 1.0),
            ("second", 1.0),
            ("first", 2.0),
            ("second", 2.0),
        ]

    def test_unsubscribe(self):
        log = TraceLog()
        seen: list = []
        cb = log.subscribe(seen.append)
        log.record(0.0, EventKind.JOB_SUBMIT)
        log.unsubscribe(cb)
        log.record(1.0, EventKind.JOB_SUBMIT)
        assert len(seen) == 1
        with pytest.raises(ValueError):
            log.unsubscribe(cb)

    def test_stream_matches_engine_determinism(self):
        """Two identical runs stream byte-identical (normalized) sequences."""
        streams = []
        for _ in range(2):
            system = BatchSystem(4, 8)
            seen: list = []
            system.trace.subscribe(seen.append)
            make_random_workload(
                30, 32, evolving_share=0.4, mean_interarrival=30.0, seed=5
            ).submit_to(system)
            system.run(max_events=1_000_000)
            assert seen == list(system.trace)  # stream == retained log
            streams.append(normalized(seen))
        assert streams[0] == streams[1]


class TestRingBuffer:
    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            TraceLog(maxlen=0)

    def test_bounded_log_keeps_newest_and_counts_drops(self):
        log = TraceLog(maxlen=3)
        for t in range(5):
            log.record(float(t), EventKind.JOB_SUBMIT, job_id=f"j{t}")
        assert len(log) == 3
        assert [e.time for e in log] == [2.0, 3.0, 4.0]
        assert log.dropped == 2
        assert log.total_recorded == 5
        assert [e.time for e in log.tail(2)] == [3.0, 4.0]

    def test_subscribers_see_dropped_events_too(self):
        log = TraceLog(maxlen=2)
        seen: list = []
        log.subscribe(seen.append)
        for t in range(6):
            log.record(float(t), EventKind.JOB_SUBMIT)
        assert len(seen) == 6
        assert len(log) == 2

    def test_clear_resets_accounting(self):
        log = TraceLog(maxlen=2)
        for t in range(4):
            log.record(float(t), EventKind.JOB_SUBMIT)
        log.clear()
        assert (len(log), log.dropped, log.total_recorded) == (0, 0, 0)

    def test_bounded_utilization_matches_unbounded(self):
        """The busy-core integral replaces trace replay when the ring drops."""
        full = run_system(telemetry=Telemetry(sample_interval=None))
        bounded = run_system(
            telemetry=Telemetry(sample_interval=None), trace_maxlen=50
        )
        assert bounded.trace.dropped > 0
        assert bounded.metrics().utilization == pytest.approx(
            full.metrics().utilization, rel=1e-9
        )


class TestJsonl:
    def test_round_trip_reproduces_identical_events(self):
        system = run_system()
        # the workload starts jobs, so payloads include int-keyed
        # cores_by_node maps — the round-trip must revive those keys
        assert any(e.kind is EventKind.JOB_START for e in system.trace)
        buf = io.StringIO()
        written = export_jsonl(system.trace, buf)
        assert written == len(system.trace)
        buf.seek(0)
        restored = read_jsonl(buf)
        assert list(restored) == list(system.trace)

    def test_streaming_writer_sees_every_event_despite_ring(self):
        buf = io.StringIO()
        system = BatchSystem(4, 8, trace_maxlen=20)
        system.trace.subscribe(JsonlTraceWriter(buf))
        make_random_workload(
            30, 32, evolving_share=0.4, mean_interarrival=30.0, seed=5
        ).submit_to(system)
        system.run(max_events=1_000_000)
        assert system.trace.dropped > 0
        buf.seek(0)
        restored = read_jsonl(buf)
        assert len(restored) == system.trace.total_recorded

    def test_file_round_trip(self, tmp_path):
        system = run_system(num_jobs=10)
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(system.trace, path)
        assert list(read_jsonl(path)) == list(system.trace)


class TestDisabledPath:
    def test_no_telemetry_and_disabled_telemetry_agree_with_baseline(self):
        plain = run_system()
        disabled = run_system(telemetry=Telemetry.disabled())
        assert normalized(plain.trace) == normalized(disabled.trace)
        assert len(disabled.telemetry.registry) == 0
        assert disabled.telemetry.sampler is None

    def test_enabled_telemetry_does_not_perturb_the_simulation(self):
        plain = run_system()
        instrumented = run_system(telemetry=Telemetry())
        assert normalized(plain.trace) == normalized(instrumented.trace)

    def test_uninstrumented_components_have_no_obs(self):
        system = run_system()
        assert system.server._obs is None
        assert system.scheduler._obs is None
        assert system.cluster._obs is None


class TestSampler:
    def test_series_recorded_and_engine_drains(self):
        telemetry = Telemetry(sample_interval=60.0)
        system = run_system(telemetry=telemetry)
        # the run returned, so the sampler stopped re-arming itself
        assert telemetry.sampler is not None
        assert telemetry.sampler.samples_taken > 1
        util = telemetry.series["utilization"]
        assert util[0][0] == 0.0
        assert all(0.0 <= v <= 1.0 for _, v in util)
        # per-sample spacing follows the configured interval
        times = [t for t, _ in util]
        assert times == sorted(times)

    def test_busy_integral_matches_trace_replay(self):
        from repro.metrics.stats import busy_core_seconds

        telemetry = Telemetry(sample_interval=None)
        system = run_system(telemetry=telemetry)
        m = system.metrics()
        replayed = busy_core_seconds(system.trace, m.first_submit, m.last_end)
        assert telemetry.busy_core_seconds(upto=m.last_end) == pytest.approx(
            replayed, rel=1e-9
        )


class _OverrunningApp:
    """Needs 400s but asked for 300s; requests +200s walltime at t=250."""

    def launch(self, ctx) -> None:
        self.ctx = ctx
        ctx.after(250.0, self._ask)
        ctx.after(400.0, ctx.finish)

    def _ask(self) -> None:
        if self.ctx.job.is_active:
            self.ctx.tm_extend_walltime(200.0, lambda grant: None)


class TestNewEventKinds:
    def test_walltime_extension_grant_recorded(self):
        from repro.cluster.allocation import ResourceRequest
        from repro.jobs.job import Job, JobFlexibility

        system = BatchSystem(2, 8)
        system.submit(
            Job(
                request=ResourceRequest(cores=8),
                walltime=300.0,
                user="late",
                flexibility=JobFlexibility.EVOLVING,
            ),
            _OverrunningApp(),
        )
        system.run()
        grants = system.trace.of_kind(EventKind.WALLTIME_EXTENSION_GRANT)
        assert len(grants) == 1
        assert grants[0].payload["extension"] == 200.0
        assert grants[0].payload["new_walltime"] == 500.0
        # the new kind supplements the pre-existing observable stream
        assert system.trace.count(EventKind.DYN_GRANT) == 1
