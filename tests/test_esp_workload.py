"""Tests for the (dynamic) ESP workload generator — paper Table I."""

import pytest

from repro.workloads.esp import (
    ESP_EXTRA_CORES,
    ESP_JOB_TYPES,
    ESP_REQUEST_FRACTION,
    ESP_RETRY_FRACTION,
    esp_core_count,
    expected_dynamic_runtime,
    make_esp_workload,
)
from repro.workloads.submission import esp_submission_times
from repro.units import minutes


class TestTable1Integrity:
    def test_total_jobs_230(self):
        assert sum(t.count for t in ESP_JOB_TYPES) == 230

    def test_evolving_split_69_161(self):
        evolving = sum(t.count for t in ESP_JOB_TYPES if t.is_evolving)
        assert evolving == 69
        assert 230 - evolving == 161

    def test_evolving_types_are_fghij(self):
        letters = {t.letter for t in ESP_JOB_TYPES if t.is_evolving}
        assert letters == {"F", "G", "H", "I", "J"}

    def test_evolving_share_30pct(self):
        assert 69 / 230 == pytest.approx(0.30)

    def test_all_evolving_owned_by_user06(self):
        assert all(t.user == "user06" for t in ESP_JOB_TYPES if t.is_evolving)

    def test_rigid_types_have_unique_users(self):
        users = [t.user for t in ESP_JOB_TYPES if not t.is_evolving]
        assert len(users) == len(set(users))

    def test_paper_set_values(self):
        by_letter = {t.letter: t for t in ESP_JOB_TYPES}
        assert by_letter["A"].static_execution_time == 267.0
        assert by_letter["F"].static_execution_time == 1846.0
        assert by_letter["Z"].static_execution_time == 100.0

    def test_paper_det_values(self):
        by_letter = {t.letter: t for t in ESP_JOB_TYPES}
        assert by_letter["F"].paper_det == 1230.0
        assert by_letter["I"].paper_det == 716.0
        assert by_letter["A"].paper_det is None

    def test_z_uses_whole_machine(self):
        z = next(t for t in ESP_JOB_TYPES if t.letter == "Z")
        assert z.fraction == 1.0 and z.count == 2


class TestCoreCounts:
    def test_fraction_rounding_on_120(self):
        assert esp_core_count(0.03125, 120) == 4
        assert esp_core_count(0.5, 120) == 60
        assert esp_core_count(1.0, 120) == 120
        assert esp_core_count(0.1582, 120) == 19

    def test_minimum_one_core(self):
        assert esp_core_count(0.001, 120) == 1


class TestDynamicRuntimeModel:
    def test_det_matches_paper_for_i_and_j(self):
        # paper: I 1432 -> 716 (4 cores), J 725 -> 483 (8 cores)
        assert expected_dynamic_runtime(1432, 4, 4, 0.0) == pytest.approx(716.0)
        assert expected_dynamic_runtime(725, 8, 4, 0.0) == pytest.approx(483.3, abs=0.5)

    def test_det_close_to_paper_for_f(self):
        assert expected_dynamic_runtime(1846, 8, 4, 0.0) == pytest.approx(1230.7, abs=1)

    def test_grant_at_sixteen_percent(self):
        # f*SET + (1-f)*SET*c/(c+4)
        assert expected_dynamic_runtime(1000, 4, 4, 0.16) == pytest.approx(580.0)

    def test_no_grant_degenerates_to_set(self):
        assert expected_dynamic_runtime(1000, 4, 4, 1.0) == pytest.approx(1000.0)


class TestSubmissionProtocol:
    def test_first_burst_instant(self):
        regular, _ = esp_submission_times(228, 2)
        assert regular[:50] == [0.0] * 50

    def test_thirty_second_spacing(self):
        regular, _ = esp_submission_times(228, 2)
        assert regular[50] == 30.0
        assert regular[227] == 178 * 30.0

    def test_z_jobs_thirty_minutes_after_last(self):
        regular, z_times = esp_submission_times(228, 2)
        assert z_times[0] == regular[-1] + minutes(30)
        assert z_times[1] == z_times[0] + 30.0

    def test_short_workloads(self):
        regular, z_times = esp_submission_times(10, 1, burst=50)
        assert regular == [0.0] * 10
        assert z_times == [minutes(30)]

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            esp_submission_times(-1, 0)


class TestMakeEspWorkload:
    def test_counts_and_types(self):
        wl = make_esp_workload(120, dynamic=True)
        assert wl.total_jobs == 230
        assert wl.evolving_jobs == 69
        by_type = {}
        for spec in wl:
            by_type[spec.esp_type] = by_type.get(spec.esp_type, 0) + 1
        assert by_type["A"] == 75 and by_type["Z"] == 2

    def test_static_variant_has_no_evolving_jobs(self):
        wl = make_esp_workload(120, dynamic=False)
        assert wl.evolving_jobs == 0
        assert wl.total_jobs == 230

    def test_deterministic_for_seed(self):
        order1 = [s.esp_type for s in make_esp_workload(120, seed=5)]
        order2 = [s.esp_type for s in make_esp_workload(120, seed=5)]
        assert order1 == order2

    def test_seed_changes_order(self):
        order1 = [s.esp_type for s in make_esp_workload(120, seed=1)]
        order2 = [s.esp_type for s in make_esp_workload(120, seed=2)]
        assert order1 != order2

    def test_z_jobs_last_and_top_priority(self):
        wl = make_esp_workload(120)
        z_specs = [s for s in wl if s.esp_type == "Z"]
        assert all(s.top_priority for s in z_specs)
        assert all(
            s.submit_time > max(r.submit_time for r in wl if r.esp_type != "Z")
            for s in z_specs
        )

    def test_evolution_profile_fractions(self):
        wl = make_esp_workload(120, dynamic=True)
        evolving = next(s for s in wl if s.evolution is not None)
        step = evolving.evolution.steps[0]
        assert step.at_fraction == ESP_REQUEST_FRACTION == 0.16
        assert step.retry_fractions == (ESP_RETRY_FRACTION,) == (0.25,)
        assert step.request.cores == ESP_EXTRA_CORES == 4

    def test_walltime_factor(self):
        wl = make_esp_workload(120, walltime_factor=1.5)
        spec = next(s for s in wl if s.esp_type == "A")
        assert spec.walltime == pytest.approx(267.0 * 1.5)
        with pytest.raises(ValueError):
            make_esp_workload(120, walltime_factor=0.9)

    def test_scales_to_other_machines(self):
        wl = make_esp_workload(64)
        z = next(s for s in wl if s.esp_type == "Z")
        assert z.request.cores == 64
