"""Tests for repro.units (duration parsing/formatting)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import UNLIMITED, days, format_duration, hours, minutes, parse_duration


class TestParseDuration:
    def test_plain_seconds_int(self):
        assert parse_duration(90) == 90.0

    def test_plain_seconds_float(self):
        assert parse_duration(1.5) == 1.5

    def test_numeric_string(self):
        assert parse_duration("4800") == 4800.0

    def test_mm_ss(self):
        assert parse_duration("30:00") == 1800.0

    def test_hh_mm_ss(self):
        assert parse_duration("06:00:00") == 21600.0

    def test_dd_hh_mm_ss(self):
        assert parse_duration("1:00:00:00") == 86400.0

    def test_paper_fig6_values(self):
        # the exact durations appearing in the paper's Fig. 6
        assert parse_duration("00:30:00") == 1800.0
        assert parse_duration("00:15:00") == 900.0
        assert parse_duration("02:00:00") == 7200.0
        assert parse_duration("04:00:00") == 14400.0

    def test_whitespace_tolerated(self):
        assert parse_duration("  01:00:00 ") == 3600.0

    def test_empty_string_rejected(self):
        with pytest.raises(ValueError):
            parse_duration("")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_duration(-5)

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            parse_duration("-1:00")

    def test_too_many_fields_rejected(self):
        with pytest.raises(ValueError):
            parse_duration("1:2:3:4:5")

    def test_empty_field_rejected(self):
        with pytest.raises(ValueError):
            parse_duration("1::00")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            parse_duration("soon")


class TestFormatDuration:
    def test_basic(self):
        assert format_duration(21600) == "06:00:00"

    def test_zero(self):
        assert format_duration(0) == "00:00:00"

    def test_hours_exceed_24(self):
        assert format_duration(90 * 3600) == "90:00:00"

    def test_unlimited_sentinel(self):
        assert format_duration(UNLIMITED) == "UNLIMITED"

    def test_negative(self):
        assert format_duration(-61) == "-00:01:01"

    def test_rounding(self):
        assert format_duration(59.6) == "00:01:00"


class TestHelpers:
    def test_minutes(self):
        assert minutes(30) == 1800.0

    def test_hours(self):
        assert hours(2) == 7200.0

    def test_days(self):
        assert days(1) == 86400.0


@given(st.integers(min_value=0, max_value=10**7))
def test_format_parse_roundtrip(seconds):
    """format -> parse is the identity for whole seconds."""
    assert parse_duration(format_duration(seconds)) == float(seconds)


@given(
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=59),
    st.integers(min_value=0, max_value=59),
)
def test_parse_hms_components(h, m, s):
    assert parse_duration(f"{h}:{m:02d}:{s:02d}") == h * 3600 + m * 60 + s
