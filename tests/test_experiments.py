"""Tests for the experiment harness (tables/figures reproduce paper shape).

The full ESP runs are cached per session (run_esp_configuration_cached), so
the cost is four ~0.5s simulations for this whole module.
"""

import pytest

from repro.experiments.configs import all_configurations, dynamic_target_config
from repro.experiments.fig7 import run_fig7, run_quadflow_case
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig12 import measure_overhead, setup_overhead_scenario
from repro.experiments.runner import run_esp_configuration_cached
from repro.experiments.table1 import render_table1, table1_rows
from repro.experiments.table2 import render_table2, run_table2
from repro.apps.quadflow import CYLINDER, FLAT_PLATE

SEED = 2014


@pytest.fixture(scope="module")
def results():
    return {c.name: run_esp_configuration_cached(c.name, seed=SEED) for c in all_configurations()}


class TestTable1:
    def test_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 14
        assert sum(r["count"] for r in rows) == 230

    def test_model_det_close_to_paper(self):
        for row in table1_rows():
            if row["paper_det_s"] is None:
                continue
            # the linear model reproduces the paper's DET within 2%
            assert row["model_det_s"] == pytest.approx(row["paper_det_s"], rel=0.02)

    def test_render_contains_all_types(self):
        text = render_table1()
        for letter in "ABCDEFGHIJKLMZ":
            assert f"\n{letter} " in text or text.startswith(f"{letter} ")


class TestTable2Shape:
    """The paper's qualitative results (Table II orderings)."""

    def test_static_satisfies_nothing(self, results):
        assert results["Static"].metrics.satisfied_dyn_jobs == 0

    def test_dynamic_configs_satisfy_requests(self, results):
        for name in ("Dyn-HP", "Dyn-500", "Dyn-600"):
            assert results[name].metrics.satisfied_dyn_jobs > 0

    def test_dyn_hp_fastest_and_static_slowest(self, results):
        times = {n: r.metrics.workload_time for n, r in results.items()}
        assert times["Dyn-HP"] < times["Static"]
        assert times["Dyn-500"] < times["Static"]
        assert times["Dyn-600"] < times["Static"]
        assert times["Dyn-HP"] <= times["Dyn-600"] <= times["Dyn-500"]

    def test_utilization_ordering(self, results):
        utils = {n: r.metrics.utilization for n, r in results.items()}
        assert utils["Static"] < utils["Dyn-500"] <= utils["Dyn-600"] <= utils["Dyn-HP"]

    def test_throughput_increase_positive(self, results):
        base = results["Static"]
        for name in ("Dyn-HP", "Dyn-500", "Dyn-600"):
            assert results[name].metrics.throughput_increase_vs(base.metrics) > 0

    def test_dyn_hp_satisfied_matches_paper(self, results):
        # with the default seed the count lands exactly on the paper's 43/69
        assert results["Dyn-HP"].metrics.satisfied_dyn_jobs == 43

    def test_fairness_rejections_only_under_dfs(self, results):
        assert results["Dyn-HP"].scheduler_stats["dyn_rejected_fairness"] == 0
        assert results["Dyn-500"].scheduler_stats["dyn_rejected_fairness"] > 0

    def test_restrictive_policy_grants_fewer(self, results):
        assert (
            results["Dyn-500"].metrics.satisfied_dyn_jobs
            < results["Dyn-HP"].metrics.satisfied_dyn_jobs
        )

    def test_render_table2(self, results):
        text = render_table2(list(results.values()))
        assert "Dyn-HP" in text and "paper" in text

    def test_run_table2_order(self):
        rows = run_table2(seed=SEED)
        assert [r.name for r in rows] == ["Static", "Dyn-HP", "Dyn-500", "Dyn-600"]


class TestFig7Shape:
    def test_savings_match_paper(self):
        flat = run_quadflow_case(FLAT_PLATE, dynamic=True, start_nodes=2)
        flat16 = run_quadflow_case(FLAT_PLATE, dynamic=False, start_nodes=2)
        saving = (flat16.total - flat.total) / flat16.total
        assert saving == pytest.approx(0.17, abs=0.01)

        cyl = run_quadflow_case(CYLINDER, dynamic=True, start_nodes=2)
        cyl16 = run_quadflow_case(CYLINDER, dynamic=False, start_nodes=2)
        saving = (cyl16.total - cyl.total) / cyl16.total
        assert saving == pytest.approx(0.333, abs=0.01)

    def test_six_bars(self):
        runs = run_fig7()
        assert len(runs) == 6
        labels = {(r.case, r.label) for r in runs}
        assert ("Cylinder", "dynamic") in labels

    def test_time_to_final_adaptation_identical(self):
        s16 = run_quadflow_case(CYLINDER, dynamic=False, start_nodes=2)
        s32 = run_quadflow_case(CYLINDER, dynamic=False, start_nodes=4)
        assert sum(s16.phase_times[:-1]) == pytest.approx(sum(s32.phase_times[:-1]))


class TestFig8Shape:
    def test_band_of_delayed_jobs_exists(self):
        _, rows = run_fig8(seed=SEED)
        delayed = [
            r
            for r in rows
            if r["Static"] is not None
            and r["Dyn-HP"] is not None
            and r["Dyn-HP"] > r["Static"] + 1.0
        ]
        improved = [
            r
            for r in rows
            if r["Static"] is not None
            and r["Dyn-HP"] is not None
            and r["Dyn-HP"] < r["Static"] - 1.0
        ]
        # the paper's signature: some jobs pay, many gain
        assert len(delayed) > 10
        assert len(improved) > len(delayed)

    def test_rows_cover_all_jobs(self):
        _, rows = run_fig8(seed=SEED)
        assert len(rows) == 230


class TestFig9Shape:
    def test_type_l_fairness_recovery(self):
        _, rows = run_fig9(seed=SEED)
        assert len(rows) == 36  # all type-L jobs
        # mean type-L wait under the restrictive policy is no worse than HP
        import statistics

        hp = statistics.mean(r["Dyn-HP"] for r in rows)
        dyn500 = statistics.mean(r["Dyn-500"] for r in rows)
        assert dyn500 <= hp * 1.05


class TestFig12:
    def test_overhead_positive_and_small(self):
        seconds = measure_overhead(5, loaded=False)
        assert 0.0 < seconds < 1.0  # sub-second, as in the paper

    def test_loaded_scenario_has_queue(self):
        probe = setup_overhead_scenario(loaded=True)
        assert len(probe.system.server.queue) == 10

    def test_grant_size_matches_request(self):
        probe = setup_overhead_scenario(loaded=False)
        probe.request(3)
        assert probe.grant.total_cores == 24

    def test_loaded_costs_more_than_empty(self):
        empty = min(measure_overhead(5, loaded=False) for _ in range(3))
        loaded = min(measure_overhead(5, loaded=True) for _ in range(3))
        assert loaded > empty


class TestConfigHelpers:
    def test_dynamic_target_config(self):
        config = dynamic_target_config(500.0)
        assert config.dfs.default_user.target_delay_time == 500.0
        assert config.reservation_depth == 5

    def test_paper_references_attached(self):
        for cfg in all_configurations():
            assert "time_min" in cfg.paper_reference
