"""Tests for malleable-job support (scheduler-initiated shrink).

Resource source #3 of Section II-B: "stealing resources from malleable
jobs".  The scheduler asks a running malleable job to shrink when idle
resources do not cover a dynamic request; the application releases what it
can afford above its minimum and keeps computing more slowly.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp, MalleableWorkApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def malleable_job(cores=8, walltime=5000.0, user="mall"):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.MALLEABLE,
    )


def evolving_job(cores=4, walltime=1000.0, user="evo", extra=4):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=extra)),
    )


class TestRequestShrink:
    def test_shrink_via_server(self):
        system = BatchSystem(2, 8, MauiConfig())
        job = malleable_job(cores=8)
        app = MalleableWorkApp(1000.0, min_cores=4)
        system.submit(job, app)
        system.run(until=0.0)
        released = system.server.request_shrink(job, 2)
        assert released == 2
        assert job.allocation.total_cores == 6
        assert app.shrunk_by == 2

    def test_shrink_respects_min_cores(self):
        system = BatchSystem(2, 8, MauiConfig())
        job = malleable_job(cores=8)
        system.submit(job, MalleableWorkApp(1000.0, min_cores=6))
        system.run(until=0.0)
        assert system.server.request_shrink(job, 100) == 2

    def test_non_malleable_job_returns_zero(self):
        system = BatchSystem(2, 8, MauiConfig())
        job = Job(request=ResourceRequest(cores=8), walltime=100.0)
        system.submit(job, FixedRuntimeApp(100.0))
        system.run(until=0.0)
        assert system.server.request_shrink(job, 4) == 0

    def test_shrink_slows_completion(self):
        system = BatchSystem(2, 8, MauiConfig())
        job = malleable_job(cores=8, walltime=4000.0)
        system.submit(job, MalleableWorkApp(1000.0, min_cores=4))
        system.run(until=500.0)
        system.server.request_shrink(job, 4)
        system.run()
        # 500s at full speed, then 500s of work at half speed
        assert job.end_time == pytest.approx(500.0 + 1000.0)
        assert job.state is JobState.COMPLETED

    def test_invalid_shrink_request(self):
        system = BatchSystem(2, 8, MauiConfig())
        job = malleable_job()
        system.submit(job, MalleableWorkApp(1000.0))
        system.run(until=0.0)
        with pytest.raises(ValueError):
            system.server.request_shrink(job, 0)

    def test_min_cores_validation(self):
        with pytest.raises(ValueError):
            MalleableWorkApp(1000.0, min_cores=0)


class TestMalleableStealing:
    def test_dynamic_request_served_by_shrinking(self):
        config = MauiConfig(malleable_steal_for_dynamic=True)
        system = BatchSystem(1, 12, config)
        evo = system.submit(evolving_job(cores=4), EvolvingWorkApp(1000.0))
        mall = system.submit(
            malleable_job(cores=8, walltime=8000.0), MalleableWorkApp(2000.0, min_cores=1)
        )
        system.run(until=200.0)
        # at t=160 nothing is idle; the malleable job shrinks 8 -> 4
        assert evo.dyn_granted == 1
        assert mall.allocation.total_cores == 4
        assert system.scheduler.stats["malleable_shrinks"] >= 1

    def test_no_stealing_when_disabled(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = system.submit(evolving_job(cores=4), EvolvingWorkApp(1000.0))
        mall = system.submit(
            malleable_job(cores=4, walltime=8000.0), MalleableWorkApp(2000.0, min_cores=1)
        )
        system.run(until=200.0)
        assert evo.dyn_granted == 0
        assert mall.allocation.total_cores == 4

    def test_evolving_job_not_asked_to_shrink_for_itself(self):
        config = MauiConfig(malleable_steal_for_dynamic=True)
        system = BatchSystem(1, 8, config)
        # a malleable AND evolving machine state: only the malleable other
        # job may be shrunk, never the requester
        evo = system.submit(evolving_job(cores=8), EvolvingWorkApp(1000.0))
        system.run(until=200.0)
        assert evo.allocation.total_cores == 8  # nothing shrunk, no grant
        assert evo.dyn_granted == 0

    def test_shaped_requests_not_served_by_stealing(self):
        config = MauiConfig(malleable_steal_for_dynamic=True)
        system = BatchSystem(1, 8, config)
        evo = Job(
            request=ResourceRequest(cores=4),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(nodes=1, ppn=4)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        system.submit(
            malleable_job(cores=4, walltime=8000.0), MalleableWorkApp(2000.0, min_cores=1)
        )
        system.run(until=200.0)
        assert evo.dyn_granted == 0  # whole-node shapes can't be stolen piecemeal

    def test_both_jobs_complete_after_steal(self):
        config = MauiConfig(malleable_steal_for_dynamic=True)
        system = BatchSystem(1, 8, config)
        evo = system.submit(evolving_job(cores=4), EvolvingWorkApp(1000.0))
        mall = system.submit(
            malleable_job(cores=4, walltime=10000.0), MalleableWorkApp(1000.0, min_cores=1)
        )
        system.run()
        assert evo.state is JobState.COMPLETED
        assert mall.state is JobState.COMPLETED
        assert system.cluster.used_cores == 0
