"""Tests for the mom daemons and the join/dyn_join/dyn_disjoin protocol."""

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.job import Job
from repro.rms.mom import MomManager


def make_job():
    return Job(request=ResourceRequest(cores=4), walltime=100.0)


@pytest.fixture
def moms(small_cluster):
    return MomManager(small_cluster)


class TestJoin:
    def test_join_sets_mother_superior_to_lowest_node(self, moms):
        job = make_job()
        ms = moms.join(job, Allocation({2: 4, 1: 4}))
        assert ms == 1
        assert moms.mother_superior[job.job_id] == 1
        assert moms.cores_held(job) == 8

    def test_double_join_rejected(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4}))
        with pytest.raises(RuntimeError):
            moms.join(job, Allocation({1: 4}))

    def test_join_empty_rejected(self, moms):
        with pytest.raises(ValueError):
            moms.join(make_job(), Allocation({}))

    def test_mom_oversubscription_rejected(self, moms):
        job_a, job_b = make_job(), make_job()
        moms.join(job_a, Allocation({0: 8}))
        with pytest.raises(RuntimeError):
            moms.join(job_b, Allocation({0: 1}))


class TestDynJoin:
    def test_expands_allocation(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4}))
        moms.dyn_join(job, Allocation({1: 8}))
        assert moms.cores_held(job) == 12
        # mother superior unchanged by expansion
        assert moms.mother_superior[job.job_id] == 0

    def test_requires_running_job(self, moms):
        with pytest.raises(RuntimeError):
            moms.dyn_join(make_job(), Allocation({0: 4}))

    def test_same_node_expansion(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4}))
        moms.dyn_join(job, Allocation({0: 2}))
        assert moms.moms[0].jobs[job.job_id] == 6


class TestDynDisjoin:
    def test_releases_subset(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4, 1: 8}))
        moms.dyn_disjoin(job, Allocation({1: 8}))
        assert moms.cores_held(job) == 4

    def test_partial_node_release(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 8}))
        moms.dyn_disjoin(job, Allocation({0: 3}))
        assert moms.moms[0].jobs[job.job_id] == 5

    def test_mother_superior_keeps_a_core(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4, 1: 4}))
        with pytest.raises(RuntimeError):
            moms.dyn_disjoin(job, Allocation({0: 4}))

    def test_release_more_than_held_rejected(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4, 1: 2}))
        with pytest.raises(RuntimeError):
            moms.dyn_disjoin(job, Allocation({1: 3}))

    def test_release_from_absent_node_rejected(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4, 1: 1}))
        with pytest.raises(RuntimeError):
            moms.dyn_disjoin(job, Allocation({2: 1, 1: 1}))


class TestExit:
    def test_exit_detaches_everywhere(self, moms):
        job = make_job()
        moms.join(job, Allocation({0: 4, 3: 8}))
        moms.exit(job)
        assert moms.cores_held(job) == 0
        assert job.job_id not in moms.mother_superior

    def test_exit_requires_join(self, moms):
        with pytest.raises(RuntimeError):
            moms.exit(make_job())

    def test_two_jobs_share_a_node(self, moms):
        a, b = make_job(), make_job()
        moms.join(a, Allocation({0: 4}))
        moms.join(b, Allocation({0: 4}))
        moms.exit(a)
        assert moms.moms[0].jobs == {b.job_id: 4}
