"""Unit tests for preemption planning and partition helpers."""

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.maui.partition import find_dynamic_allocation, static_partitions
from repro.maui.preemption import plan_preemption


def running(cluster, cores_by_node, *, backfilled=True, evolving=False, start=0.0):
    job = Job(
        request=ResourceRequest(cores=sum(cores_by_node.values())),
        walltime=1000.0,
        flexibility=JobFlexibility.EVOLVING if evolving else JobFlexibility.RIGID,
    )
    job.state = JobState.RUNNING
    job.start_time = start
    job.allocation = Allocation(cores_by_node)
    job.backfilled = backfilled
    cluster.claim(job.allocation)
    return job


class TestPlanPreemption:
    def test_no_preemption_needed_when_fits(self, small_cluster):
        victims = plan_preemption(small_cluster, ResourceRequest(cores=4), [])
        assert victims == []

    def test_none_when_impossible(self, small_cluster):
        jobs = [running(small_cluster, {0: 8})]
        victims = plan_preemption(small_cluster, ResourceRequest(cores=33), jobs)
        assert victims is None

    def test_minimal_victim_set(self, small_cluster):
        a = running(small_cluster, {0: 8}, start=0.0)
        b = running(small_cluster, {1: 8}, start=10.0)
        c = running(small_cluster, {2: 8}, start=20.0)
        running(small_cluster, {3: 8}, backfilled=False)  # priority job: safe
        victims = plan_preemption(small_cluster, ResourceRequest(cores=8), [a, b, c])
        # latest-started-first, one job suffices
        assert victims == [c]

    def test_multiple_victims_accumulate(self, small_cluster):
        a = running(small_cluster, {0: 8}, start=0.0)
        b = running(small_cluster, {1: 8}, start=10.0)
        running(small_cluster, {2: 8}, backfilled=False)
        running(small_cluster, {3: 8}, backfilled=False)
        victims = plan_preemption(small_cluster, ResourceRequest(cores=16), [a, b])
        assert set(victims) == {a, b}

    def test_priority_jobs_never_victims(self, small_cluster):
        safe = running(small_cluster, {0: 8}, backfilled=False)
        victims = plan_preemption(small_cluster, ResourceRequest(cores=30), [safe])
        assert victims is None

    def test_evolving_jobs_never_victims(self, small_cluster):
        evo = running(small_cluster, {0: 8}, backfilled=True, evolving=True)
        victims = plan_preemption(small_cluster, ResourceRequest(cores=30), [evo])
        assert victims is None

    def test_shaped_request(self, small_cluster):
        a = running(small_cluster, {0: 8}, start=5.0)
        victims = plan_preemption(
            small_cluster, ResourceRequest(nodes=4, ppn=8), [a]
        )
        assert victims == [a]

    def test_partition_restriction(self):
        cluster = Cluster.homogeneous(4, 8, dynamic_partition_nodes=1)
        # victim runs on the dynamic-partition node, outside allowed set
        victim = running(cluster, {3: 8})
        plan = plan_preemption(
            cluster, ResourceRequest(cores=32), [victim], partitions=("batch",)
        )
        # freeing node 3 does not help a batch-partition request for 32 cores
        assert plan is None


class TestPartitionHelpers:
    def test_static_partitions(self):
        assert static_partitions(MauiConfig()) is None
        assert static_partitions(MauiConfig(use_dynamic_partition=True)) == ("batch",)

    def test_find_dynamic_allocation_prefers_partition(self):
        cluster = Cluster.homogeneous(4, 8, dynamic_partition_nodes=1)
        config = MauiConfig(use_dynamic_partition=True)
        alloc = find_dynamic_allocation(cluster, ResourceRequest(cores=4), config)
        assert list(alloc.keys()) == [3]

    def test_find_dynamic_allocation_falls_back_to_batch(self):
        cluster = Cluster.homogeneous(4, 8, dynamic_partition_nodes=1)
        cluster.claim(Allocation({3: 8}))  # dynamic partition busy
        config = MauiConfig(use_dynamic_partition=True)
        alloc = find_dynamic_allocation(cluster, ResourceRequest(cores=4), config)
        assert alloc is not None
        assert 3 not in alloc

    def test_without_partition_any_idle_core_qualifies(self):
        cluster = Cluster.homogeneous(4, 8)
        alloc = find_dynamic_allocation(cluster, ResourceRequest(cores=32), MauiConfig())
        assert alloc.total_cores == 32
