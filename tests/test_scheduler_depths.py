"""Tests for ReservationDepth edge semantics after the depth/start decoupling.

``ReservationDepth`` bounds reservations, never starts: even with depth 0 a
fitting job must start immediately (the hypothesis suite found the original
regression here).
"""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.sim.events import EventKind
from repro.system import BatchSystem


def rigid(cores, walltime, user="u"):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user)


class TestDepthZero:
    def test_fitting_job_starts_with_depth_zero(self):
        system = BatchSystem(2, 8, MauiConfig(reservation_depth=0, backfill_enabled=False))
        job = system.submit(rigid(8, 100), FixedRuntimeApp(100))
        system.run()
        assert job.state is JobState.COMPLETED
        assert job.start_time == 0.0

    def test_no_reservations_created_with_depth_zero(self):
        system = BatchSystem(2, 8, MauiConfig(reservation_depth=0))
        system.submit(rigid(16, 100), FixedRuntimeApp(100))
        system.submit(rigid(16, 100), FixedRuntimeApp(100))
        system.submit(rigid(16, 100), FixedRuntimeApp(100))
        system.run()
        assert system.trace.count(EventKind.RESERVATION_CREATE) == 0
        assert system.scheduler.stats["reservations_created"] == 0

    def test_depth_zero_with_backfill_can_bypass_blocked_job(self):
        # optimistic extreme: without a reservation, the blocked wide job is
        # repeatedly bypassed by fitting jobs
        system = BatchSystem(2, 8, MauiConfig(reservation_depth=0))
        a = system.submit(rigid(8, 100, "a"), FixedRuntimeApp(100))
        wide = system.submit(rigid(16, 100, "wide"), FixedRuntimeApp(100))
        small = system.submit(rigid(8, 200, "small"), FixedRuntimeApp(200))
        system.run()
        assert small.start_time == 0.0  # bypassed the blocked wide job
        assert wide.start_time == 200.0  # waits for everything

    def test_depth_one_protects_blocked_job(self):
        system = BatchSystem(2, 8, MauiConfig(reservation_depth=1))
        a = system.submit(rigid(8, 100, "a"), FixedRuntimeApp(100))
        wide = system.submit(rigid(16, 100, "wide"), FixedRuntimeApp(100))
        small = system.submit(rigid(8, 200, "small"), FixedRuntimeApp(200))
        system.run()
        # with a reservation at t=100, the 200s small job cannot backfill
        assert wide.start_time == 100.0
        assert small.start_time == 200.0


class TestStrictPriorityWithoutBackfill:
    def test_no_out_of_order_starts(self):
        system = BatchSystem(2, 8, MauiConfig(backfill_enabled=False))
        a = system.submit(rigid(8, 100, "a"), FixedRuntimeApp(100))
        wide = system.submit(rigid(16, 300, "wide"), FixedRuntimeApp(300))
        small = system.submit(rigid(4, 10, "small"), FixedRuntimeApp(10))
        system.run()
        # strict order: small never jumps the blocked wide job
        assert small.start_time >= wide.start_time
        assert system.scheduler.stats["jobs_backfilled"] == 0

    def test_out_of_order_marked_backfilled(self):
        system = BatchSystem(2, 8, MauiConfig(reservation_depth=1))
        a = system.submit(rigid(8, 100, "a"), FixedRuntimeApp(100))
        wide = system.submit(rigid(16, 300, "wide"), FixedRuntimeApp(300))
        small = system.submit(rigid(4, 50, "small"), FixedRuntimeApp(50))
        system.run()
        assert small.start_time == 0.0
        assert small.backfilled
        assert not a.backfilled
