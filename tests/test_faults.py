"""Tests for the fault-injection subsystem (repro.faults) and the
hardened node-failure / grant-delivery paths in the server."""

import math
import random

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.node import NodeState
from repro.faults import FaultInjector, FaultModel, generate_failure_trace
from repro.faults.trace import FAIL, RECOVER
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.rms.server import Server
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.system import BatchSystem


def rigid(cores, walltime, user="u"):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user)


# ----------------------------------------------------------------------
# the model
# ----------------------------------------------------------------------
class TestFaultModel:
    def test_disabled_by_default(self):
        model = FaultModel()
        assert not model.enabled
        assert not model.node_failures_enabled
        assert not model.transient_faults_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mtbf": 0.0},
            {"mtbf": -1.0},
            {"mttr": 0.0},
            {"distribution": "uniform"},
            {"weibull_shape": 0.0},
            {"burst_probability": 1.5},
            {"burst_size": 1},
            {"horizon": 0.0},
            {"grant_delivery_failure_rate": 1.0},
            {"grant_delivery_failure_rate": -0.1},
            {"delivery_max_retries": -1},
            {"delivery_retry_backoff": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_frozen_and_hashable(self):
        model = FaultModel(seed=1, mtbf=100.0)
        assert hash(model) == hash(FaultModel(seed=1, mtbf=100.0))


# ----------------------------------------------------------------------
# the trace generator
# ----------------------------------------------------------------------
def assert_consistent(trace):
    """Per node: strictly alternating fail -> recover, ending recovered."""
    state = {}
    for ev in trace:
        if ev.kind == FAIL:
            assert state.get(ev.node, "up") == "up", f"double fail: {ev}"
            state[ev.node] = "down"
        else:
            assert state.get(ev.node) == "down", f"recover while up: {ev}"
            state[ev.node] = "up"
    assert all(s == "up" for s in state.values())


class TestTraceGenerator:
    MODEL = FaultModel(seed=11, mtbf=1500.0, mttr=200.0, horizon=10_000.0)

    def test_disabled_model_generates_nothing(self):
        assert generate_failure_trace(FaultModel(seed=1), range(8)) == []

    def test_deterministic(self):
        a = generate_failure_trace(self.MODEL, range(10))
        b = generate_failure_trace(self.MODEL, range(10))
        assert a == b
        different = FaultModel(seed=12, mtbf=1500.0, mttr=200.0, horizon=10_000.0)
        assert generate_failure_trace(different, range(10)) != a

    def test_sorted_and_consistent(self):
        trace = generate_failure_trace(self.MODEL, range(10))
        assert trace, "this model should produce failures"
        assert [(-1, e.time) for e in trace] == sorted(
            (-1, e.time) for e in trace
        )
        assert_consistent(trace)

    def test_every_failure_is_paired_within_horizon_for_fails(self):
        trace = generate_failure_trace(self.MODEL, range(10))
        fails = [e for e in trace if e.kind == FAIL]
        recovers = [e for e in trace if e.kind == RECOVER]
        assert len(fails) == len(recovers)
        assert all(e.time < self.MODEL.horizon for e in fails)
        # recoveries may exceed the horizon — that's the drain guarantee

    def test_per_node_independence(self):
        """Adding nodes never perturbs an existing node's failure history."""
        small = generate_failure_trace(self.MODEL, range(5))
        large = generate_failure_trace(self.MODEL, range(10))
        for node in range(5):
            assert [e for e in small if e.node == node] == [
                e for e in large if e.node == node
            ]

    def test_weibull_distribution(self):
        model = FaultModel(
            seed=5, mtbf=1500.0, mttr=200.0, distribution="weibull",
            weibull_shape=0.7, horizon=10_000.0,
        )
        trace = generate_failure_trace(model, range(10))
        assert trace
        assert_consistent(trace)

    def test_correlated_bursts(self):
        model = FaultModel(
            seed=11, mtbf=3000.0, mttr=200.0, burst_probability=1.0,
            burst_size=3, horizon=10_000.0,
        )
        trace = generate_failure_trace(model, range(10))
        assert_consistent(trace)
        by_time = {}
        for ev in trace:
            if ev.kind == FAIL:
                by_time.setdefault(ev.time, set()).add(ev.node)
        assert any(len(nodes) >= 2 for nodes in by_time.values()), (
            "p=1 bursts must produce simultaneous multi-node failures"
        )

    def test_bursts_only_add_intervals(self):
        base = FaultModel(seed=11, mtbf=3000.0, mttr=200.0, horizon=10_000.0)
        burst = FaultModel(
            seed=11, mtbf=3000.0, mttr=200.0, burst_probability=1.0,
            burst_size=2, horizon=10_000.0,
        )
        base_fails = {
            (e.time, e.node)
            for e in generate_failure_trace(base, range(6))
            if e.kind == FAIL
        }
        burst_fails = {
            (e.time, e.node)
            for e in generate_failure_trace(burst, range(6))
            if e.kind == FAIL
        }
        # every base failure still happens (possibly absorbed into a merged
        # longer interval that *starts* at the same instant or earlier)
        burst_down_starts = {t for t, _ in burst_fails}
        assert len(burst_fails) >= len(base_fails) or burst_down_starts


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
def normalize_job_ids(lines):
    """Job ids come from a process-global counter; rank them per run."""
    import re

    mapping = {}

    def sub(match):
        return mapping.setdefault(match.group(0), f"J{len(mapping)}")

    return [re.sub(r"job\.\d+", sub, line) for line in lines]


class TestFaultInjector:
    def test_drives_failures_and_recoveries(self):
        model = FaultModel(seed=3, mtbf=800.0, mttr=150.0, horizon=3000.0)
        system = BatchSystem(4, 8, MauiConfig(), fault_model=model)
        assert system.fault_injector is not None
        for i in range(6):
            system.submit(rigid(8, 400.0, f"u{i}"), FixedRuntimeApp(300.0))
        system.run(max_events=1_000_000)
        stats = system.fault_injector.stats
        assert stats["node_failures"] > 0
        assert stats["node_failures"] == stats["node_recoveries"]
        assert system.trace.count(EventKind.NODE_FAIL) == stats["node_failures"]
        assert system.trace.count(EventKind.NODE_RECOVER) == stats["node_recoveries"]
        assert stats["downtime_seconds"] > 0
        assert system.fault_injector.effective_mttr > 0
        # every node ended the run back UP
        assert all(n.state is NodeState.UP for n in system.cluster.nodes)
        report = system.fault_injector.report()
        assert report["delivery_drops"] == 0
        assert report["trace_events"] == len(system.fault_injector.trace)

    def test_lost_work_and_requeues_accounted(self):
        model = FaultModel(seed=3, mtbf=800.0, mttr=150.0, horizon=3000.0)
        system = BatchSystem(4, 8, MauiConfig(), fault_model=model)
        jobs = [
            system.submit(rigid(16, 2000.0, f"u{i}"), FixedRuntimeApp(1500.0))
            for i in range(3)
        ]
        system.run(max_events=1_000_000)
        stats = system.fault_injector.stats
        requeues = sum(j.metadata.get("node_failures", 0) for j in jobs)
        assert stats["jobs_requeued"] == requeues
        if requeues:
            assert stats["lost_core_seconds"] > 0

    def test_deterministic_end_to_end(self):
        model = FaultModel(
            seed=9, mtbf=600.0, mttr=100.0, horizon=2500.0,
            grant_delivery_failure_rate=0.2,
        )

        def run_once():
            system = BatchSystem(4, 8, MauiConfig(), fault_model=model)
            from repro.workloads.random_workload import make_random_workload

            make_random_workload(30, 32, evolving_share=0.5, seed=42).submit_to(
                system
            )
            system.run(max_events=1_000_000)
            report = system.fault_injector.report()
            report.pop("trace_events", None)
            return normalize_job_ids(repr(e) for e in system.trace), report

        assert run_once() == run_once()

    def test_disabled_model_is_bit_identical_to_no_injector(self):
        """The acceptance criterion: a zero-rate injector changes nothing."""
        from repro.workloads.random_workload import make_random_workload

        def run_once(fault_model):
            system = BatchSystem(4, 8, MauiConfig(), fault_model=fault_model)
            make_random_workload(30, 32, evolving_share=0.5, seed=42).submit_to(
                system
            )
            system.run(max_events=1_000_000)
            schedule = [
                (j.start_time, j.end_time)
                for j in sorted(system.server.jobs.values(), key=lambda j: j.seq)
            ]
            return normalize_job_ids(repr(e) for e in system.trace), schedule

        with_disabled = run_once(FaultModel(seed=123))
        without = run_once(None)
        assert with_disabled == without


# ----------------------------------------------------------------------
# transient grant-delivery faults (server hardening)
# ----------------------------------------------------------------------
class ScriptedFaults:
    """Deterministic TransientFaults stand-in: drop listed attempt numbers."""

    def __init__(self, drops, max_retries=3, backoff=5.0):
        self.drops = set(drops)
        self.max_retries = max_retries
        self.backoff = backoff
        self.stats = {
            "delivery_drops": 0,
            "delivery_retries": 0,
            "delivery_degraded": 0,
        }

    def drop_delivery(self, job_id, attempt):
        drop = attempt in self.drops
        if drop:
            self.stats["delivery_drops"] += 1
        return drop

    def retry_delay(self, attempt):
        return self.backoff * (2.0 ** (attempt - 1))

    def note_retry(self):
        self.stats["delivery_retries"] += 1

    def note_degraded(self):
        self.stats["delivery_degraded"] += 1


@pytest.fixture
def delivery_setup():
    """A running evolving job with a pending granted-but-undelivered dreq."""
    engine = Engine()
    cluster = Cluster.homogeneous(4, 8)
    server = Server(engine, cluster)
    job = Job(
        request=ResourceRequest(cores=8),
        walltime=10_000.0,
        flexibility=JobFlexibility.EVOLVING,
    )
    server.submit(job)

    captured = {}

    class Capture:
        def launch(self, ctx):
            captured["ctx"] = ctx

    server._apps[job.job_id] = Capture()
    server.start_job(job, Allocation({0: 4, 1: 4}))
    grants = []
    captured["ctx"].tm_dynget(ResourceRequest(cores=8), grants.append)
    return engine, cluster, server, job, grants


class TestGrantDeliveryFaults:
    def test_dropped_delivery_is_retried_and_succeeds(self, delivery_setup):
        engine, cluster, server, job, grants = delivery_setup
        faults = ScriptedFaults(drops={1})
        server.attach_faults(faults)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        # dropped: nothing delivered yet, retry pending
        assert grants == []
        assert cluster.used_cores == 8
        assert job.job_id in server._pending_deliveries
        engine.run(until=100.0)
        # retry at t+5 delivered the grant
        assert grants == [Allocation({2: 8})]
        assert job.allocation.total_cores == 16
        assert job.dyn_granted == 1
        assert server.trace.count(EventKind.GRANT_DELIVERY_FAIL) == 1
        assert server.trace.count(EventKind.DYN_GRANT) == 1
        assert faults.stats["delivery_retries"] == 1
        assert not server._pending_deliveries

    def test_exhausted_retries_degrade_gracefully(self, delivery_setup):
        engine, cluster, server, job, grants = delivery_setup
        faults = ScriptedFaults(drops={1, 2, 3}, max_retries=2)
        server.attach_faults(faults)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        engine.run(until=100.0)
        # attempts 1, 2, 3 all dropped; budget of 2 retries exhausted
        assert grants == [None]
        assert job.state is JobState.RUNNING
        assert job.allocation.total_cores == 8
        assert job.dyn_rejected == 1
        assert cluster.used_cores == 8
        rejects = server.trace.of_kind(EventKind.DYN_REJECT)
        assert "delivery failed" in rejects[0].payload["reason"]
        assert faults.stats["delivery_degraded"] == 1

    def test_node_failure_between_decision_and_delivery(self, delivery_setup):
        """The satellite regression: fail a node while its grant is in flight.

        The pending callback must not fire with a dead allocation — the
        request fails cleanly (rejection semantics) and the retry timer
        never delivers.
        """
        engine, cluster, server, job, grants = delivery_setup
        faults = ScriptedFaults(drops={1})
        server.attach_faults(faults)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        assert job.job_id in server._pending_deliveries
        # node 2 dies before the retry fires; the owning job (nodes 0, 1)
        # survives, but its granted allocation is on the dead node
        server.handle_node_failure(2)
        assert grants == [None]
        assert not server._pending_deliveries
        engine.run(until=100.0)
        # the cancelled retry never delivered anything
        assert grants == [None]
        assert job.state is JobState.RUNNING
        assert job.allocation == Allocation({0: 4, 1: 4})
        assert cluster.used_cores == 8
        rejects = server.trace.of_kind(EventKind.DYN_REJECT)
        assert "node 2 failed during delivery" in rejects[0].payload["reason"]

    def test_owner_requeued_between_decision_and_delivery(self, delivery_setup):
        """Failing the *owner's* node requeues it; the in-flight grant dies."""
        engine, cluster, server, job, grants = delivery_setup
        faults = ScriptedFaults(drops={1})
        server.attach_faults(faults)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        server.handle_node_failure(0)  # owner holds nodes 0 and 1
        assert job.state is JobState.QUEUED
        assert grants == [None]
        assert not server._pending_deliveries
        engine.run(until=100.0)
        assert grants == [None]  # the retry timer was cancelled
        assert cluster.used_cores == 0

    def test_stale_allocation_at_retry_counts_as_failed_attempt(
        self, delivery_setup
    ):
        engine, cluster, server, job, grants = delivery_setup
        faults = ScriptedFaults(drops={1}, max_retries=1)
        server.attach_faults(faults)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        # someone else takes the cores during the backoff window
        cluster.claim(Allocation({2: 8}))
        engine.run(until=100.0)
        # retry found the allocation stale; budget of 1 retry exhausted
        assert grants == [None]
        assert job.state is JobState.RUNNING
        assert job.allocation.total_cores == 8
        fails = server.trace.of_kind(EventKind.GRANT_DELIVERY_FAIL)
        assert len(fails) == 2
        assert "oversubscribed" in fails[1].payload["reason"]

    def test_teardown_cancels_pending_delivery(self, delivery_setup):
        engine, cluster, server, job, grants = delivery_setup
        faults = ScriptedFaults(drops={1})
        server.attach_faults(faults)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        server.complete_job(job)
        assert not server._pending_deliveries
        engine.run(until=100.0)
        # the job is gone; the retry must not have fired a grant at it
        assert grants == []
        assert server.trace.count(EventKind.DYN_GRANT) == 0
        assert cluster.used_cores == 0

    def test_without_faults_path_unchanged(self, delivery_setup):
        engine, cluster, server, job, grants = delivery_setup
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 8}))
        assert grants == [Allocation({2: 8})]
        assert server.trace.count(EventKind.GRANT_DELIVERY_FAIL) == 0


# ----------------------------------------------------------------------
# server idempotency (hardening satellites)
# ----------------------------------------------------------------------
class TestServerNodeEventIdempotency:
    def test_repeat_failure_is_silent_noop(self, system):
        system.submit(rigid(8, 1000), FixedRuntimeApp(300.0))
        system.run(until=10.0)
        system.server.handle_node_failure(0)
        version = system.server.state_version
        assert system.server.handle_node_failure(0) == []
        assert system.server.state_version == version
        assert system.trace.count(EventKind.NODE_FAIL) == 1

    def test_repeat_recovery_is_silent_noop(self, system):
        system.server.handle_node_failure(0)
        assert system.server.recover_node(0) is True
        version = system.server.state_version
        assert system.server.recover_node(0) is False
        assert system.server.state_version == version
        assert system.trace.count(EventKind.NODE_RECOVER) == 1

    def test_node_events_force_scheduler_replanning(self, system):
        scheduler = system.scheduler
        scheduler._next_reservation_start = 500.0
        system.server.handle_node_failure(0)
        assert scheduler._next_reservation_start is None
        assert scheduler._boundary_wake is None
        scheduler._next_reservation_start = 500.0
        system.server.recover_node(0)
        assert scheduler._next_reservation_start is None


# ----------------------------------------------------------------------
# ledger attribution of failure requeues
# ----------------------------------------------------------------------
class TestLedgerNodeFailureAttribution:
    def _run(self):
        from repro.obs import Telemetry

        telemetry = Telemetry(decision_ledger=True)
        system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
        victim = system.submit(rigid(32, 2000.0), FixedRuntimeApp(1500.0))
        system.run(until=200.0)
        assert victim.state is JobState.RUNNING
        failed = victim.allocation.node_indices[0]
        system.server.handle_node_failure(failed)
        system.engine.at(400.0, system.server.recover_node, failed)
        system.run()
        assert victim.state is JobState.COMPLETED
        return telemetry.ledger, victim, failed

    def test_requeue_wait_attributed_to_node_failure(self):
        ledger, victim, _ = self._run()
        attribution = ledger.attribution(victim.job_id)
        components = attribution["components"]
        assert components["node_failure_requeued"] == pytest.approx(200.0)
        assert "requeued" not in components
        # the reconciliation invariant still telescopes exactly
        assert attribution["wait"] == pytest.approx(victim.wait_time, abs=1e-9)

    def test_node_failure_requeue_decision_recorded(self):
        from repro.obs.ledger import DecisionKind

        ledger, victim, failed = self._run()
        decisions = ledger.of_kind(DecisionKind.NODE_FAILURE_REQUEUE)
        assert len(decisions) == 1
        assert decisions[0].job_id == victim.job_id
        assert decisions[0].payload["node"] == failed
        assert decisions[0].payload["lost_seconds"] == pytest.approx(200.0)

    def test_scheduler_preemption_keeps_generic_requeued_cause(self):
        from repro.obs import Telemetry

        telemetry = Telemetry(decision_ledger=True)
        sys2 = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
        job = sys2.submit(rigid(8, 1000.0), FixedRuntimeApp(800.0))
        sys2.run(until=100.0)
        sys2.server.preempt_job(job)
        sys2.run()
        attribution = telemetry.ledger.attribution(job.job_id)
        components = attribution["components"]
        assert components["requeued"] == pytest.approx(100.0)
        assert "node_failure_requeued" not in components


# ----------------------------------------------------------------------
# ESP under churn (integration)
# ----------------------------------------------------------------------
class TestESPUnderInjection:
    def test_esp_drains_under_churn(self):
        from repro.metrics.validate import validate_trace
        from repro.workloads.esp import make_esp_workload

        model = FaultModel(
            seed=5, mtbf=4000.0, mttr=400.0, horizon=12_000.0,
            grant_delivery_failure_rate=0.1,
        )
        system = BatchSystem(
            15, 8,
            MauiConfig(reservation_depth=5, reservation_delay_depth=5),
            fault_model=model,
        )
        make_esp_workload(120, dynamic=True, seed=2014).submit_to(system)
        system.run(max_events=10_000_000)
        jobs = list(system.server.jobs.values())
        assert all(j.is_finished for j in jobs)
        assert validate_trace(system.trace, system.cluster) == []
        assert system.cluster.used_cores == 0
        assert system.fault_injector.stats["node_failures"] > 0

    @pytest.mark.slow
    def test_resilience_row_deterministic(self):
        from repro.exec.specs import ResilienceRunSpec, run_resilience_row

        spec = ResilienceRunSpec(
            "Dyn-HP",
            2014,
            FaultModel(seed=7, mtbf=6000.0, mttr=900.0,
                       grant_delivery_failure_rate=0.05),
        )
        assert run_resilience_row(spec) == run_resilience_row(spec)
