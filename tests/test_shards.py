"""Tests for the per-partition scheduler sharding (repro.maui.shards).

The contract under test, in order of importance:

1. **Single-shard oracle**: with ``scheduler_shards=1`` (the default) the
   sharded pass is *bit-identical* to the legacy monolithic pass
   (``scheduler_shards=0``) — same start/end times, same states, same
   decision counters — across every seeded ESP configuration.
2. **Multi-shard determinism**: the same seed always produces the same
   schedule, run-to-run, at any shard count.
3. **Cross-shard merge**: a full-machine job (ESP Z) routes through the
   explicit merge and can span every shard, surviving node fail/recover
   churn confined to one shard.
4. **Per-shard skip soundness**: skipping quiescent shards never changes
   the schedule, only the amount of planning work.
"""

import dataclasses

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.profile import AvailabilityProfile
from repro.maui.config import MauiConfig
from repro.maui.shards import SchedulerShard, ShardMap
from repro.system import BatchSystem
from repro.workloads import evolving_ify, make_random_workload
from repro.workloads.esp import make_esp_workload

from repro.experiments.configs import all_configurations

CONFIG_NAMES = [c.name for c in all_configurations()]


def _config(name):
    return next(c for c in all_configurations() if c.name == name)


def _run_esp(config, shards, *, num_nodes=8, cores_per_node=4, seed=2014):
    """A compact ESP run (same machine as the profile-equivalence oracle)."""
    maui = dataclasses.replace(config.maui, scheduler_shards=shards)
    system = BatchSystem(num_nodes=num_nodes, cores_per_node=cores_per_node, config=maui)
    make_esp_workload(
        num_nodes * cores_per_node, dynamic=config.dynamic_workload, seed=seed
    ).submit_to(system)
    system.run(max_events=5_000_000)
    metrics = system.metrics()
    tuples = [
        (r.submit_time, r.start_time, r.end_time, r.state) for r in metrics.records
    ]
    stats = {
        k: v
        for k, v in system.scheduler.stats.items()
        if not k.endswith("_seconds")
    }
    return tuples, stats, system


# ----------------------------------------------------------------------
# 1. single-shard pass ≡ monolithic oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", CONFIG_NAMES)
def test_single_shard_bit_identical_to_monolithic(name):
    config = _config(name)
    mono_tuples, mono_stats, _ = _run_esp(config, shards=0)
    shard_tuples, shard_stats, _ = _run_esp(config, shards=1)
    assert shard_tuples == mono_tuples
    # the sharded pass adds its own counters; everything shared must match
    for key, value in mono_stats.items():
        assert shard_stats[key] == value, key


# ----------------------------------------------------------------------
# 2. multi-shard determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4])
def test_multi_shard_same_seed_identical(shards):
    config = _config("Dyn-HP")
    a_tuples, a_stats, _ = _run_esp(config, shards=shards)
    b_tuples, b_stats, _ = _run_esp(config, shards=shards)
    assert a_tuples == b_tuples
    assert a_stats == b_stats


def test_multi_shard_workload_drains():
    """Every ESP config drains at 2 and 4 shards and exercises the merge."""
    for name in CONFIG_NAMES:
        tuples, stats, system = _run_esp(_config(name), shards=2)
        assert all(t[3] == "completed" for t in tuples), name
        # the full-machine Z job cannot fit any single shard
        assert stats["shard_merges"] > 0, name


# ----------------------------------------------------------------------
# 3. spanning jobs and the cross-shard merge
# ----------------------------------------------------------------------
def test_full_machine_job_spans_shards_under_churn():
    """ESP-Z-style lockdown drains across shards while one shard churns."""
    from repro.apps.synthetic import FixedRuntimeApp
    from repro.jobs.job import Job, JobState

    maui = MauiConfig(
        reservation_depth=5, reservation_delay_depth=5, scheduler_shards=2
    )
    system = BatchSystem(num_nodes=4, cores_per_node=8, config=maui)
    shard_map = system.scheduler._shard_map
    assert len(shard_map) == 2

    fillers = [
        system.submit(
            Job(request=ResourceRequest(cores=16), walltime=900.0, user=f"u{i}"),
            FixedRuntimeApp(300.0),
        )
        for i in range(2)
    ]
    z = Job(
        request=ResourceRequest(cores=32),
        walltime=1200.0,
        user="zuser",
        top_priority=True,
    )
    system.submit_at(10.0, z, FixedRuntimeApp(600.0))
    system.run(until=60.0)

    # churn confined to shard 1 while Z waits for the whole machine
    victim = shard_map.shards[1].nodes[0]
    system.server.handle_node_failure(victim)
    system.run(until=120.0)
    system.server.recover_node(victim)
    system.run(max_events=5_000_000)

    assert z.state is JobState.COMPLETED
    touched = {shard_map.node_to_shard[n] for n in z.allocation}
    assert touched == {0, 1}
    assert all(j.state is JobState.COMPLETED for j in fillers)
    assert system.scheduler.stats["shard_merges"] > 0


def test_merge_matches_monolithic_profile():
    """Merging shard profiles reproduces the full profile bit-for-bit."""
    whole = AvailabilityProfile(range(8), {i: 4 for i in range(8)}, 0.0)
    left = AvailabilityProfile(range(4), {i: 4 for i in range(4)}, 0.0)
    right = AvailabilityProfile(range(4, 8), {i: 4 for i in range(4, 8)}, 0.0)

    claims = [
        (0.0, 100.0, Allocation({0: 4, 1: 2})),
        (50.0, 250.0, Allocation({5: 4})),
        (10.0, 90.0, Allocation({3: 1, 4: 3})),
    ]
    for start, end, alloc in claims:
        whole.add_claim(start, end, alloc)
        for shard in (left, right):
            inside = {n: c for n, c in alloc.items() if n in shard._pos}
            if inside:
                shard.add_claim(start, end, Allocation(inside))

    merged = AvailabilityProfile.merge([left, right])
    assert merged._nodes == whole._nodes
    for t in sorted(set(whole.breakpoints) | set(merged.breakpoints)):
        assert merged.free_at(t) == whole.free_at(t), t
    request = ResourceRequest(cores=20)
    assert merged.earliest_fit(request, 50.0, after=0.0) == whole.earliest_fit(
        request, 50.0, after=0.0
    )


def test_merge_rejects_overlapping_nodes():
    a = AvailabilityProfile((0, 1), {0: 4, 1: 4}, 0.0)
    b = AvailabilityProfile((1, 2), {1: 4, 2: 4}, 0.0)
    with pytest.raises(ValueError):
        AvailabilityProfile.merge([a, b])


# ----------------------------------------------------------------------
# 4. per-shard skip soundness
# ----------------------------------------------------------------------
def test_shard_skip_does_not_change_schedule():
    maui = MauiConfig(
        reservation_depth=5, reservation_delay_depth=5, scheduler_shards=4
    )
    workload = make_random_workload(80, 64, seed=42)

    def run(skip):
        system = BatchSystem(num_nodes=8, cores_per_node=8, config=maui)
        system.scheduler.shard_skip_enabled = skip
        workload.submit_to(system)
        system.run(max_events=5_000_000)
        return (
            [
                (r.submit_time, r.start_time, r.end_time, r.state)
                for r in system.metrics().records
            ],
            system.scheduler.stats,
        )

    on_tuples, on_stats = run(True)
    off_tuples, off_stats = run(False)
    assert on_tuples == off_tuples
    assert on_stats["shard_passes_skipped"] > 0
    assert off_stats["shard_passes_skipped"] == 0


# ----------------------------------------------------------------------
# shard map construction
# ----------------------------------------------------------------------
class TestShardMap:
    def test_balanced_contiguous_split(self):
        cluster = Cluster.homogeneous(10, 8)
        shard_map = ShardMap.build(cluster, 3)
        sizes = [len(s.nodes) for s in shard_map.shards]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        flat = [n for s in shard_map.shards for n in s.nodes]
        assert flat == sorted(flat)  # contiguous ascending ⇒ global order

    def test_partitions_never_mix(self):
        cluster = Cluster.homogeneous(10, 8, dynamic_partition_nodes=4)
        shard_map = ShardMap.build(cluster, 2)
        for shard in shard_map.shards:
            partitions = {cluster.node(n).partition for n in shard.nodes}
            assert len(partitions) == 1

    def test_more_shards_than_nodes(self):
        cluster = Cluster.homogeneous(2, 8)
        shard_map = ShardMap.build(cluster, 8)
        assert len(shard_map) == 2

    def test_capable_shards_and_spanning(self):
        cluster = Cluster.homogeneous(8, 4)
        shard_map = ShardMap.build(cluster, 2)
        assert len(shard_map.capable_shards(cluster, ResourceRequest(cores=8))) == 2
        # more cores than any single shard holds ⇒ no capable shard
        assert shard_map.capable_shards(cluster, ResourceRequest(cores=20)) == ()

    def test_split_allocation(self):
        cluster = Cluster.homogeneous(4, 8)
        shard_map = ShardMap.build(cluster, 2)
        pieces = shard_map.split_allocation(Allocation({0: 8, 1: 4, 2: 8}))
        assert set(pieces) == {0, 1}
        assert dict(pieces[0].items()) == {0: 8, 1: 4}
        assert dict(pieces[1].items()) == {2: 8}


# ----------------------------------------------------------------------
# cluster-side caches and shard version counters
# ----------------------------------------------------------------------
class TestClusterShardBookkeeping:
    def test_free_maps_are_private_copies(self):
        cluster = Cluster.homogeneous(4, 8)
        a = cluster.free_by_node()
        a.pop(0)
        assert 0 in cluster.free_by_node()
        b = cluster.free_for_nodes((0, 1))
        b[0] = 0
        assert cluster.free_for_nodes((0, 1))[0] == 8

    def test_free_for_nodes_skips_down(self):
        cluster = Cluster.homogeneous(4, 8)
        cluster.fail_node(1)
        assert set(cluster.free_for_nodes((0, 1, 2))) == {0, 2}

    def test_shard_versions_bump_only_touched_shard(self):
        cluster = Cluster.homogeneous(4, 8)
        cluster.install_shard_index({0: 0, 1: 0, 2: 1, 3: 1}, 2)
        alloc = Allocation({0: 4})
        cluster.claim(alloc)
        assert cluster.shard_versions == [1, 0]
        cluster.release(alloc)
        assert cluster.shard_versions == [2, 0]
        cluster.fail_node(3)
        assert cluster.shard_versions == [2, 1]
        cluster.recover_node(3)
        assert cluster.shard_versions == [2, 2]


# ----------------------------------------------------------------------
# evolving_ify
# ----------------------------------------------------------------------
class TestEvolvingIfy:
    def test_seeded_and_counted(self):
        base = make_random_workload(100, 64, evolving_share=0.0, seed=1)
        assert base.evolving_jobs == 0
        evolved = evolving_ify(base, 0.25, seed=7)
        assert evolved.evolving_jobs == 25
        again = evolving_ify(base, 0.25, seed=7)
        picked = [s.evolution is not None for s in evolved.specs]
        assert picked == [s.evolution is not None for s in again.specs]
        other = evolving_ify(base, 0.25, seed=8)
        assert picked != [s.evolution is not None for s in other.specs]
        assert base.evolving_jobs == 0  # input untouched

    def test_already_evolving_left_alone(self):
        base = make_random_workload(50, 64, evolving_share=1.0, seed=3)
        evolved = evolving_ify(base, 0.5, seed=1)
        assert evolved.evolving_jobs == base.evolving_jobs
        assert [s.evolution for s in evolved.specs] == [
            s.evolution for s in base.specs
        ]

    def test_runs_and_grows(self):
        base = make_random_workload(
            40, 32, evolving_share=0.0, size_range=(1, 16), seed=5
        )
        evolved = evolving_ify(base, 0.5, seed=9)
        system = BatchSystem(
            num_nodes=4,
            cores_per_node=8,
            config=MauiConfig(reservation_depth=5, reservation_delay_depth=5),
        )
        evolved.submit_to(system)
        system.run(max_events=5_000_000)
        metrics = system.metrics()
        assert metrics.completed_jobs == 40
        assert metrics.satisfied_dyn_jobs > 0

    def test_fraction_out_of_range_rejected(self):
        base = make_random_workload(10, 64, evolving_share=0.0, seed=1)
        for bad in (-0.1, 1.1, 2.0):
            with pytest.raises(ValueError, match=r"fraction must be in \[0, 1\]"):
                evolving_ify(base, bad, seed=1)
        # the boundaries themselves are legal
        assert evolving_ify(base, 0.0, seed=1).evolving_jobs == 0
        assert evolving_ify(base, 1.0, seed=1).evolving_jobs == 10
