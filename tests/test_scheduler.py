"""Tests for the MauiScheduler: Algorithm 1/2 behaviour end to end.

These run through the full BatchSystem (engine + server + scheduler) on
small, hand-analysable scenarios.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import DFSConfig, DFSPolicy, MauiConfig, PrincipalLimits
from repro.sim.events import EventKind
from repro.system import BatchSystem


def rigid(cores, walltime, user="u", **kw):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user, **kw)


def evolving(cores, walltime, user="evo", extra=4, at=0.16, retries=(0.25,)):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(at, ResourceRequest(cores=extra), retries),
    )


class TestStaticScheduling:
    def test_fifo_start(self, system):
        a = system.submit(rigid(16, 100))
        b = system.submit(rigid(16, 100))
        system.run(until=0.0)
        assert a.state is JobState.RUNNING
        assert b.state is JobState.RUNNING

    def test_blocked_job_waits_for_release(self, system):
        a = system.submit(rigid(32, 100), FixedRuntimeApp(100))
        b = system.submit(rigid(32, 100), FixedRuntimeApp(100))
        system.run()
        assert a.start_time == 0.0
        assert b.start_time == 100.0

    def test_backfill_around_reservation(self, system):
        # a(16c,100s) runs; b(32c) reserves t=100; c(16c,50s) backfills now
        a = system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
        b = system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
        c = system.submit(rigid(16, 50, "c"), FixedRuntimeApp(50))
        system.run()
        assert a.start_time == 0.0
        assert c.start_time == 0.0
        assert c.backfilled
        assert b.start_time == 100.0

    def test_backfill_disabled(self):
        system = BatchSystem(4, 8, MauiConfig(backfill_enabled=False))
        a = system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
        b = system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
        c = system.submit(rigid(16, 50, "c"), FixedRuntimeApp(50))
        system.run()
        # strict priority order: c runs only after b, despite the idle gap
        # beside a in [0, 100) that backfill would have used
        assert c.start_time == 300.0

    def test_iteration_trace_recorded(self, system):
        system.submit(rigid(8, 10), FixedRuntimeApp(10))
        system.run()
        assert system.trace.count(EventKind.SCHED_ITERATION) >= 1

    def test_reservation_trace_recorded(self, system):
        system.submit(rigid(32, 100), FixedRuntimeApp(100))
        system.submit(rigid(32, 100), FixedRuntimeApp(100))
        system.run(until=0.0)
        assert system.trace.count(EventKind.RESERVATION_CREATE) >= 1


class TestZLockdown:
    def test_z_job_blocks_lower_priority_starts(self, system):
        running = system.submit(rigid(16, 100, "r"), FixedRuntimeApp(100))
        system.run(until=0.0)
        z = system.submit(rigid(32, 50, "z", top_priority=True), FixedRuntimeApp(50))
        small = system.submit(rigid(4, 10, "s"), FixedRuntimeApp(10))
        system.run(until=50.0)
        # while Z waits for the machine to drain, nothing else may start
        assert small.start_time is None or small.start_time >= 100.0
        system.run()
        assert z.start_time == 100.0
        assert small.start_time == 150.0  # after Z completes

    def test_z_job_starts_immediately_on_idle_machine(self, system):
        z = system.submit(rigid(32, 50, "z", top_priority=True), FixedRuntimeApp(50))
        system.run()
        assert z.start_time == 0.0
        assert z.state is JobState.COMPLETED


class TestDynamicRequests:
    def test_grant_from_idle(self, system):
        job = system.submit(evolving(4, 1000), EvolvingWorkApp(1000))
        system.run()
        assert job.dyn_granted == 1
        assert job.state is JobState.COMPLETED
        # expansion at 16%: 160 + 840 * 4/8 = 580
        assert job.end_time == pytest.approx(580.0)

    def test_reject_when_no_idle(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = system.submit(evolving(4, 1000), EvolvingWorkApp(1000))
        blocker = system.submit(rigid(4, 2000, "b"), FixedRuntimeApp(2000))
        system.run(until=500.0)
        assert evo.dyn_granted == 0
        assert evo.dyn_rejected == 2  # 16% attempt and 25% retry both fail

    def test_static_config_rejects_everything(self):
        system = BatchSystem(4, 8, MauiConfig(dynamic_enabled=False))
        job = system.submit(evolving(4, 1000), EvolvingWorkApp(1000))
        system.run()
        assert job.dyn_granted == 0
        assert job.dyn_rejected == 2
        assert job.end_time == pytest.approx(1000.0)  # full static runtime

    def test_retry_succeeds_after_release(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = system.submit(evolving(4, 2000), EvolvingWorkApp(2000))
        # blocker occupies the other 4 cores past the 16% point (t=320)
        # but releases before the 25% retry (t=500)
        blocker = system.submit(rigid(4, 400, "b"), FixedRuntimeApp(400))
        system.run()
        assert evo.dyn_rejected == 1
        assert evo.dyn_granted == 1

    def test_fifo_order_of_dynamic_requests(self, system):
        # two evolving jobs request simultaneously; only 4 idle cores remain
        evo1 = system.submit(evolving(12, 1000, "e1"), EvolvingWorkApp(1000))
        evo2 = system.submit(evolving(12, 1000, "e2"), EvolvingWorkApp(1000))
        filler = system.submit(rigid(4, 1000, "f"), FixedRuntimeApp(1000))
        system.run(until=200.0)
        # both requested at t=160 (same fraction, same SET); FIFO favours
        # the first submitter
        assert evo1.dyn_granted == 1
        assert evo2.dyn_granted == 0

    def _veto_scenario(self, evo_user: str, queued_user: str) -> BatchSystem:
        """Evolving job (4c, walltime 2000, SET 1000) + a 300s rigid runner.

        The queued 12-core job could start at t=300 when the runner ends;
        granting the evolving job 4 extra cores until its walltime end
        (t=2000) pushes that start to t=2000 — a 1700s delay against a 1s cap.
        """
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                default_user=PrincipalLimits(target_delay_time=1.0),
            )
        )
        system = BatchSystem(2, 8, config)
        evo = Job(
            request=ResourceRequest(cores=4),
            walltime=2000.0,
            user=evo_user,
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
        )
        system.submit(evo, EvolvingWorkApp(1000))
        system.submit(rigid(8, 300, "runner"), FixedRuntimeApp(300))
        system.submit(rigid(12, 100, queued_user), FixedRuntimeApp(100))
        system.run(until=250.0)
        return system, evo

    def test_fairness_veto_path(self):
        system, evo = self._veto_scenario("evo", "waiting")
        assert evo.dyn_granted == 0
        assert system.scheduler.stats["dyn_rejected_fairness"] >= 1

    def test_same_user_delay_is_exempt(self):
        system, evo = self._veto_scenario("same", "same")
        assert evo.dyn_granted == 1

    def test_grant_trace_has_nodes(self, system):
        system.submit(evolving(4, 1000), EvolvingWorkApp(1000))
        system.run()
        grant = system.trace.of_kind(EventKind.DYN_GRANT)[0]
        assert grant.payload["cores"] == 4
        assert grant.payload["nodes"]


class TestDynamicPartition:
    def _system(self):
        cluster = Cluster.homogeneous(4, 8, dynamic_partition_nodes=1)
        return BatchSystem(config=MauiConfig(use_dynamic_partition=True), cluster=cluster)

    def test_static_jobs_avoid_dynamic_partition(self):
        system = self._system()
        job = system.submit(rigid(24, 100), FixedRuntimeApp(100))
        system.run(until=0.0)
        assert job.state is JobState.RUNNING
        assert 3 not in job.allocation  # node 3 is fenced

    def test_static_job_larger_than_batch_partition_never_starts(self):
        system = self._system()
        job = system.submit(rigid(32, 100), FixedRuntimeApp(100))
        system.run(until=100.0)
        assert job.state is JobState.QUEUED

    def test_dynamic_request_served_from_partition_first(self):
        system = self._system()
        evo = system.submit(evolving(4, 1000), EvolvingWorkApp(1000))
        system.run(until=200.0)
        grant = system.trace.of_kind(EventKind.DYN_GRANT)[0]
        assert grant.payload["nodes"] == [3]

    def test_partition_overflow_falls_back_to_batch_idle(self):
        system = self._system()
        evo = system.submit(
            Job(
                request=ResourceRequest(cores=4),
                walltime=1000.0,
                user="evo",
                flexibility=JobFlexibility.EVOLVING,
                evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=12)),
            ),
            EvolvingWorkApp(1000),
        )
        system.run(until=200.0)
        grant = system.trace.of_kind(EventKind.DYN_GRANT)[0]
        assert set(grant.payload["nodes"]) - {3}  # spills into batch nodes


class TestPreemptionForDynamic:
    def test_backfilled_job_preempted_for_dynamic_request(self):
        config = MauiConfig(preemption_for_dynamic=True)
        system = BatchSystem(2, 8, config)
        evo = system.submit(evolving(8, 1000, "evo"), EvolvingWorkApp(1000))
        # head-of-queue blocker that cannot start (needs 16 cores); its
        # reservation begins at t=1000 when the evolving job's walltime ends
        blocker = system.submit(rigid(16, 500, "big"), FixedRuntimeApp(500))
        # small job backfills into the remaining 8 cores (ends before t=1000)
        small = system.submit(rigid(8, 800, "small"), FixedRuntimeApp(800))
        system.run(until=0.0)
        assert small.backfilled and small.state is JobState.RUNNING
        system.run(until=200.0)
        # at t=160 the evolving job asks for 4 cores; none idle -> preempt
        assert evo.dyn_granted == 1
        assert small.metadata.get("preempt_count", 0) == 1
        assert system.scheduler.stats["preemptions"] == 1
        assert system.trace.count(EventKind.PREEMPT) == 1

    def test_no_preemption_when_disabled(self):
        system = BatchSystem(2, 8, MauiConfig())
        evo = system.submit(evolving(8, 1000, "evo"), EvolvingWorkApp(1000))
        blocker = system.submit(rigid(16, 500, "big"), FixedRuntimeApp(500))
        small = system.submit(rigid(8, 800, "small"), FixedRuntimeApp(800))
        system.run(until=200.0)
        assert evo.dyn_granted == 0
        assert system.scheduler.stats["preemptions"] == 0

    def test_evolving_jobs_never_preempted(self):
        config = MauiConfig(preemption_for_dynamic=True)
        system = BatchSystem(1, 8, config)
        evo_a = system.submit(evolving(4, 1000, "a"), EvolvingWorkApp(1000))
        evo_b = system.submit(evolving(4, 1000, "b"), EvolvingWorkApp(1000))
        system.run(until=300.0)
        # neither evolving job may be sacrificed for the other's request
        assert evo_a.metadata.get("preempt_count", 0) == 0
        assert evo_b.metadata.get("preempt_count", 0) == 0


class TestSchedulerStats:
    def test_counters_consistent(self, system):
        for _ in range(3):
            system.submit(rigid(8, 50), FixedRuntimeApp(50))
        system.submit(evolving(4, 500), EvolvingWorkApp(500))
        system.run()
        stats = system.scheduler.stats
        assert stats["jobs_started"] + stats["jobs_backfilled"] == 4
        assert stats["dyn_granted"] == 1

    def test_timer_interval_triggers_iterations(self):
        system = BatchSystem(2, 8, MauiConfig(timer_interval=10.0))
        system.submit(rigid(8, 25), FixedRuntimeApp(25))
        system.run(until=100.0)
        stats = system.scheduler.stats
        # periodic wakeups continue after the workload drains; quiescent
        # ticks are counted as skips instead of running a full pass
        assert stats["iterations"] + stats["iterations_skipped"] >= 10
        assert stats["iterations_skipped"] > 0

    def test_timer_ticks_run_full_iterations_with_skip_disabled(self):
        system = BatchSystem(2, 8, MauiConfig(timer_interval=10.0))
        system.scheduler.iteration_skip_enabled = False
        system.submit(rigid(8, 25), FixedRuntimeApp(25))
        system.run(until=100.0)
        assert system.scheduler.stats["iterations"] >= 10
        assert system.scheduler.stats["iterations_skipped"] == 0


class TestIterationSkip:
    """Event-driven activation: quiescent wake-ups skip, forced wakes run."""

    def test_maintenance_edges_force_full_iterations(self):
        from repro.maui.reservations import AdminReservation

        window = AdminReservation(cores_by_node={0: 8}, start=50.0, end=60.0)
        system = BatchSystem(2, 8, MauiConfig(admin_reservations=(window,)))
        system.run(until=100.0)
        # both window edges are time-only triggers: they must run a full
        # pass even though no job or cluster state ever changed
        assert system.scheduler.stats["iterations"] >= 2
        assert system.scheduler.stats["iterations_skipped"] == 0

    def test_productive_iteration_never_arms_the_skip(self):
        # an iteration that starts a job changes state mid-pass; the echo
        # wake-up it triggers must run another full pass (reservations can
        # land differently once the job actually occupies its cores)
        system = BatchSystem(2, 8, MauiConfig())
        scheduler = system.scheduler
        system.submit(rigid(4, 50), FixedRuntimeApp(50))
        system.engine.run(until=1.0)
        assert scheduler.stats["jobs_started"] == 1
        # submit wake (starts the job) + its echo both ran full passes;
        # the start bumped the versions past the first pass's fingerprint
        assert scheduler.stats["iterations"] == 2
        assert scheduler.stats["iterations_skipped"] == 0

    def test_skip_on_and_off_schedules_are_identical(self):
        from repro.workloads.random_workload import make_random_workload

        def run(skip_enabled):
            system = BatchSystem(4, 8, MauiConfig(timer_interval=15.0))
            system.scheduler.iteration_skip_enabled = skip_enabled
            make_random_workload(
                40, 32, evolving_share=0.4, mean_interarrival=30.0,
                size_range=(1, 16), seed=7,
            ).submit_to(system)
            # the periodic timer reschedules forever: bound by sim time
            system.run(until=100_000.0, max_events=1_000_000)
            assert not system.server.queue and not system.server.active_count
            stats = system.scheduler.stats
            # job ids are process-global, so compare in submission order
            timeline = [
                (j.start_time, j.end_time)
                for j in sorted(system.server.jobs.values(), key=lambda j: j.seq)
            ]
            return timeline, stats

        timeline_on, stats_on = run(True)
        timeline_off, stats_off = run(False)
        assert timeline_on == timeline_off
        assert stats_on["dyn_granted"] == stats_off["dyn_granted"]
        assert stats_on["dyn_rejected"] == stats_off["dyn_rejected"]
        assert stats_on["jobs_started"] == stats_off["jobs_started"]
        assert stats_on["jobs_backfilled"] == stats_off["jobs_backfilled"]
        assert stats_on["iterations_skipped"] > 0
        assert stats_off["iterations_skipped"] == 0
        assert (
            stats_on["iterations"] + stats_on["iterations_skipped"]
            >= stats_off["iterations"]
        )

    def test_skip_counter_mirrored_into_registry(self):
        from repro.obs import Telemetry

        telemetry = Telemetry(enabled=True)
        system = BatchSystem(
            2, 8, MauiConfig(timer_interval=10.0), telemetry=telemetry
        )
        system.submit(rigid(8, 25), FixedRuntimeApp(25))
        system.run(until=100.0)
        skipped = system.scheduler.stats["iterations_skipped"]
        assert skipped > 0
        assert (
            telemetry.registry.value("repro_sched_iterations_skipped_total")
            == skipped
        )
