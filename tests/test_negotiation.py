"""Tests for the negotiation protocol (extension of Section III-C's outlook).

With a timeout, a dynamic request stays queued at the server until resources
arrive or the deadline passes; the scheduler publishes earliest-availability
estimates along the way.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def evolving_job(cores=4, walltime=2000.0, user="evo"):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
    )


class TestNegotiatedRequests:
    def test_granted_when_resources_free_before_deadline(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = evolving_job()
        system.submit(evo, EvolvingWorkApp(1000.0, negotiation_timeout=600.0))
        # blocker holds the spare cores past the trigger (t=160) but
        # releases at t=400, well inside the 600s negotiation window
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=400.0, user="b"),
            FixedRuntimeApp(400.0),
        )
        system.run()
        assert evo.dyn_granted == 1
        assert evo.dyn_rejected == 0
        # grant at t=400: 400s at speed 1, remaining 600s work at speed 2
        assert evo.end_time == pytest.approx(400.0 + 600.0 / 2)

    def test_rejected_at_deadline(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = evolving_job()
        system.submit(evo, EvolvingWorkApp(1000.0, negotiation_timeout=300.0))
        # blocker outlives the negotiation window (160 + 300 = 460 < 600)
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=600.0, user="b"),
            FixedRuntimeApp(600.0),
        )
        system.run()
        assert evo.dyn_granted == 0
        assert evo.dyn_rejected == 1
        assert evo.end_time == pytest.approx(1000.0)

    def test_estimates_published_while_waiting(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = evolving_job()
        system.submit(evo, EvolvingWorkApp(1000.0, negotiation_timeout=600.0))
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=400.0, user="b"),
            FixedRuntimeApp(400.0),
        )
        system.run()
        estimates = evo.metadata.get("availability_estimates", [])
        assert estimates, "no availability estimate was published"
        # the blocker's walltime end is the correct availability estimate
        assert estimates[0] == pytest.approx(400.0)

    def test_job_keeps_computing_while_negotiating(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = evolving_job()
        app = EvolvingWorkApp(1000.0, negotiation_timeout=600.0)
        system.submit(evo, app)
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=400.0, user="b"),
            FixedRuntimeApp(400.0),
        )
        system.run(until=399.0)
        assert evo.state is JobState.DYNQUEUED  # request pending
        app._advance()
        assert app.work_done == pytest.approx(399.0)  # still progressing

    def test_completion_with_pending_negotiation_is_clean(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = Job(
            request=ResourceRequest(cores=4),
            walltime=500.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
        )
        # negotiation window (2000s) far outlives the job itself
        system.submit(evo, EvolvingWorkApp(500.0, negotiation_timeout=2000.0))
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=3000.0, user="b"),
            FixedRuntimeApp(3000.0),
        )
        system.run()
        assert evo.state is JobState.COMPLETED
        assert evo.end_time == pytest.approx(500.0)
        assert not system.server.dyn_queue

    def test_invalid_timeout_rejected(self):
        system = BatchSystem(1, 8, MauiConfig())
        with pytest.raises(ValueError):
            EvolvingWorkApp(1000.0, negotiation_timeout=0.0)
        evo = evolving_job()
        system.submit(evo, None)
        system.run(until=0.0)
        ctx = system.server._contexts[evo.job_id]
        with pytest.raises(ValueError):
            ctx.tm_dynget(
                ResourceRequest(cores=4), lambda g: None, timeout=-5.0
            )

    def test_impossible_request_rejected_immediately(self):
        system = BatchSystem(1, 8, MauiConfig())
        evo = Job(
            request=ResourceRequest(cores=4),
            walltime=2000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=100)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0, negotiation_timeout=600.0))
        system.run(until=200.0)
        # 100 extra cores can never fit an 8-core machine: no point waiting
        assert evo.dyn_rejected == 1
