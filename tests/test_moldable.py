"""Tests for moldable jobs (scheduler-chosen start size, paper Section I)."""

import pytest

from repro.apps.synthetic import FixedRuntimeApp, MoldableWorkApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def moldable(cores, min_cores, walltime, user="mold"):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.MOLDABLE,
        min_cores=min_cores,
    )


def rigid(cores, walltime, user="r"):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user)


class TestJobValidation:
    def test_min_cores_requires_moldable(self):
        with pytest.raises(ValueError, match="moldable"):
            Job(request=ResourceRequest(cores=8), walltime=10.0, min_cores=4)

    def test_min_cores_bounds(self):
        with pytest.raises(ValueError):
            moldable(8, 9, 10.0)

    def test_shaped_moldable_rejected(self):
        with pytest.raises(ValueError, match="flexible"):
            Job(
                request=ResourceRequest(nodes=1, ppn=8),
                walltime=10.0,
                flexibility=JobFlexibility.MOLDABLE,
                min_cores=4,
            )

    def test_moldable_floor(self):
        assert moldable(8, 4, 10.0).moldable_floor == 4
        assert rigid(8, 10.0).moldable_floor == 8


class TestMolding:
    def test_full_request_when_room(self):
        system = BatchSystem(2, 8, MauiConfig())
        job = moldable(16, 4, 1000.0)
        system.submit(job, MoldableWorkApp(400.0))
        system.run()
        assert job.allocation.total_cores == 16
        assert job.end_time == pytest.approx(400.0)
        assert system.scheduler.stats["jobs_molded"] == 0

    def test_molds_down_to_fit_now(self):
        system = BatchSystem(2, 8, MauiConfig())
        blocker = system.submit(rigid(8, 2000.0), FixedRuntimeApp(2000.0))
        job = moldable(16, 4, 4000.0)
        system.submit(job, MoldableWorkApp(400.0))
        system.run(until=0.0)
        # only 8 cores free: the job starts molded to 8 instead of waiting
        assert job.state is JobState.RUNNING
        assert job.allocation.total_cores == 8
        assert system.scheduler.stats["jobs_molded"] == 1

    def test_molded_job_runs_proportionally_longer(self):
        system = BatchSystem(2, 8, MauiConfig())
        system.submit(rigid(8, 2000.0), FixedRuntimeApp(2000.0))
        job = moldable(16, 4, 4000.0)
        system.submit(job, MoldableWorkApp(400.0))
        system.run()
        # molded to half the request: double the runtime
        assert job.end_time == pytest.approx(800.0)

    def test_respects_floor(self):
        system = BatchSystem(2, 8, MauiConfig())
        system.submit(rigid(13, 2000.0), FixedRuntimeApp(2000.0))
        job = moldable(16, 4, 8000.0)
        system.submit(job, MoldableWorkApp(400.0))
        system.run(until=0.0)
        # only 3 cores free < floor of 4: must NOT have started
        assert job.state is JobState.QUEUED
        assert job.allocation is None

    def test_rigid_job_never_molded(self):
        system = BatchSystem(2, 8, MauiConfig())
        system.submit(rigid(8, 500.0), FixedRuntimeApp(500.0))
        job = rigid(16, 500.0, "second")
        system.submit(job, FixedRuntimeApp(500.0))
        system.run(until=0.0)
        assert job.state is JobState.QUEUED

    def test_molding_counts_in_stats(self):
        system = BatchSystem(1, 8, MauiConfig())
        system.submit(rigid(4, 1000.0), FixedRuntimeApp(1000.0))
        a = moldable(8, 2, 4000.0, "m1")
        system.submit(a, MoldableWorkApp(100.0))
        system.run()
        assert system.scheduler.stats["jobs_molded"] == 1
        assert a.state is JobState.COMPLETED
