"""End-to-end fairness tests: class/QoS limits, delay permission and the
wait-fairness index across the paper's configurations."""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import DFSConfig, DFSPolicy, MauiConfig, PrincipalLimits
from repro.metrics.stats import jains_fairness_index
from repro.system import BatchSystem


def veto_scenario(config: MauiConfig, victim_kwargs: dict) -> tuple:
    """Evolving job whose grant would delay the victim by ~1700s."""
    system = BatchSystem(2, 8, config)
    evo = Job(
        request=ResourceRequest(cores=4),
        walltime=2000.0,
        user="evo",
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
    )
    system.submit(evo, EvolvingWorkApp(1000.0))
    system.submit(
        Job(request=ResourceRequest(cores=8), walltime=300.0, user="runner"),
        FixedRuntimeApp(300.0),
    )
    victim = Job(
        request=ResourceRequest(cores=12), walltime=100.0, **victim_kwargs
    )
    system.submit(victim, FixedRuntimeApp(100.0))
    system.run(until=250.0)
    return system, evo


class TestClassAndQosLimits:
    def test_class_limit_vetoes_grant(self):
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                classes={"debug": PrincipalLimits(target_delay_time=1.0)},
            )
        )
        _, evo = veto_scenario(config, dict(user="victim", job_class="debug"))
        assert evo.dyn_granted == 0

    def test_other_class_unaffected(self):
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                classes={"debug": PrincipalLimits(target_delay_time=1.0)},
            )
        )
        _, evo = veto_scenario(config, dict(user="victim", job_class="batch"))
        assert evo.dyn_granted == 1

    def test_qos_perm_veto(self):
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                qos={"realtime": PrincipalLimits(dyn_delay_perm=False)},
            )
        )
        _, evo = veto_scenario(config, dict(user="victim", qos="realtime"))
        assert evo.dyn_granted == 0

    def test_account_limit(self):
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.SINGLE_JOB_DELAY,
                accounts={"proj42": PrincipalLimits(single_delay_time=10.0)},
            )
        )
        _, evo = veto_scenario(config, dict(user="victim", account="proj42"))
        assert evo.dyn_granted == 0


class TestWaitFairnessIndex:
    def test_uniform_is_one(self):
        assert jains_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jains_fairness_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_empty_is_one(self):
        assert jains_fairness_index([]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jains_fairness_index([-1.0])

    def test_esp_fairness_ordering(self):
        """DFS restores per-user wait uniformity relative to Dyn-HP.

        The quantitative counterpart of Figs. 9-11: Jain's index over
        per-user mean waits must not degrade when the fairness policy is on.
        """
        from repro.experiments.runner import run_esp_configuration_cached

        index = {
            name: run_esp_configuration_cached(name, seed=2014).metrics.wait_fairness_index
            for name in ("Static", "Dyn-HP", "Dyn-500")
        }
        assert 0.0 < index["Dyn-HP"] <= 1.0
        assert index["Dyn-500"] >= index["Dyn-HP"] * 0.98

    def test_metrics_per_user_means(self):
        system = BatchSystem(1, 8, MauiConfig())
        a = system.submit(
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="a"),
            FixedRuntimeApp(100.0),
        )
        b = system.submit(
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="b"),
            FixedRuntimeApp(100.0),
        )
        system.run()
        means = system.metrics().mean_wait_by_user()
        assert means == {"a": 0.0, "b": 100.0}
