"""Tests for multi-step evolution profiles (sequential growth phases).

The paper's ESP jobs grow once; the protocol itself serialises any number
of steps through the mother superior (one pending request at a time).
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile, EvolutionStep
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def two_step_job(walltime=2000.0):
    return Job(
        request=ResourceRequest(cores=4),
        walltime=walltime,
        user="grower",
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile(
            steps=(
                EvolutionStep(0.2, ResourceRequest(cores=4)),
                EvolutionStep(0.6, ResourceRequest(cores=8)),
            )
        ),
    )


class TestTwoStepGrowth:
    def test_both_steps_granted(self, system):
        job = two_step_job()
        system.submit(job, EvolvingWorkApp(1000.0))
        system.run()
        assert job.dyn_granted == 2
        assert job.state is JobState.COMPLETED
        # 4 cores to 20% (200s), 8 cores for work 0.2W..0.6W (400s work at
        # speed 2 = 200s), 16 cores for the last 0.4W (400s at speed 4 = 100s)
        assert job.end_time == pytest.approx(200.0 + 200.0 + 100.0)

    def test_second_step_skipped_if_first_rejected(self):
        system = BatchSystem(1, 8, MauiConfig())
        job = two_step_job()
        system.submit(job, EvolvingWorkApp(1000.0))
        blocker = Job(request=ResourceRequest(cores=4), walltime=260.0, user="b")
        system.submit(blocker, FixedRuntimeApp(260.0))
        system.run()
        # step 1 (t=200, no retries) rejected; step 2 at work fraction 0.6
        # (t=600 at base speed): blocker gone, 4 idle cores < 8 wanted? no:
        # 4 cores free, request is 8 -> rejected too
        assert job.dyn_granted == 0
        assert job.dyn_rejected == 2
        assert job.end_time == pytest.approx(1000.0)

    def test_partial_growth(self):
        # first step granted, second rejected: finishes between the extremes
        system = BatchSystem(1, 8, MauiConfig())
        job = two_step_job()
        system.submit(job, EvolvingWorkApp(1000.0))
        system.run()
        # step 1 (+4) granted at 200s; step 2 (+8) never fits an 8-core box
        assert job.dyn_granted == 1
        assert job.dyn_rejected == 1
        # 200s at speed 1, then 800s of work at speed 2
        assert job.end_time == pytest.approx(200.0 + 400.0)

    def test_mom_view_tracks_both_expansions(self, system):
        job = two_step_job()
        system.submit(job, EvolvingWorkApp(1000.0))
        # the job completes exactly at t=500; probe just before
        system.run(until=450.0)
        assert system.server.moms.cores_held(job) == 16

    def test_three_steps_with_retries(self, system):
        job = Job(
            request=ResourceRequest(cores=2),
            walltime=4000.0,
            user="g",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile(
                steps=(
                    EvolutionStep(0.1, ResourceRequest(cores=2), (0.15,)),
                    EvolutionStep(0.4, ResourceRequest(cores=2), (0.45,)),
                    EvolutionStep(0.7, ResourceRequest(cores=2)),
                )
            ),
        )
        system.submit(job, EvolvingWorkApp(1000.0))
        system.run()
        assert job.dyn_granted == 3
        assert job.allocation.total_cores == 8
        assert job.state is JobState.COMPLETED
