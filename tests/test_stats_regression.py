"""The O(active) accounting rewrite must not change a single accrued bit.

``MauiScheduler._update_statistics`` historically scanned *every* job ever
submitted on each iteration.  The active-set rewrite only touches running
jobs plus those finished since the last accrual window; this regression
test replays the full dynamic ESP run under both implementations and
requires the fairshare ledgers — floating-point partial sums included —
and every scheduling decision to come out identical.
"""

from repro.maui.config import MauiConfig
from repro.maui.scheduler import MauiScheduler
from repro.sim.events import EventKind
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload


def _legacy_update_statistics(self, now):
    """The pre-optimisation implementation: full scan of server.jobs."""
    last = self._last_stats_time
    if now > last:
        for job in self.server.jobs.values():
            if job.start_time is None or job.allocation is None:
                continue
            seg_start = max(last, job.start_time)
            seg_end = now if job.end_time is None else min(now, job.end_time)
            if seg_end > seg_start:
                self.fairshare.add_usage(
                    job.user, job.allocation.total_cores * (seg_end - seg_start)
                )
    self._last_stats_time = now
    self.fairshare.roll(now)
    if self.dfs.roll(now):
        self.trace.record(
            now, EventKind.DFS_INTERVAL_ROLL, interval_start=self.dfs.interval_start
        )


def _run_dynamic_esp() -> BatchSystem:
    system = BatchSystem(
        15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
    )
    make_esp_workload(120, dynamic=True, seed=2014).submit_to(system)
    system.run(max_events=5_000_000)
    return system


def test_active_set_accounting_matches_legacy_scan(monkeypatch):
    current = _run_dynamic_esp()
    monkeypatch.setattr(
        MauiScheduler, "_update_statistics", _legacy_update_statistics
    )
    legacy = _run_dynamic_esp()

    # bit-identical fairshare ledgers (same users, same float partial sums)
    assert current.scheduler.fairshare._usage == legacy.scheduler.fairshare._usage
    # identical scheduling decisions all the way through
    for key in (
        "iterations", "dyn_granted", "dyn_rejected", "jobs_started",
        "jobs_backfilled", "reservations_created", "total_delay_charged",
    ):
        assert current.scheduler.stats[key] == legacy.scheduler.stats[key], key

    # identical per-job outcomes; job ids/seqs come from a process-global
    # counter, so compare records modulo identity
    import dataclasses

    mc, ml = current.metrics(), legacy.metrics()
    strip = ("job_id", "seq")
    for a, b in zip(mc.records, ml.records, strict=True):
        da = {k: v for k, v in dataclasses.asdict(a).items() if k not in strip}
        db = {k: v for k, v in dataclasses.asdict(b).items() if k not in strip}
        assert da == db
    assert (mc.workload_time, mc.utilization, mc.mean_wait, mc.satisfied_dyn_jobs) == (
        ml.workload_time, ml.utilization, ml.mean_wait, ml.satisfied_dyn_jobs
    )


def test_drained_jobs_are_charged_exactly_once(monkeypatch):
    """The drain list empties on accrual and finished jobs never recharge."""
    system = _run_dynamic_esp()
    server = system.server
    assert server.drain_finished_for_stats() == []  # scheduler consumed all
    assert server.active_count == 0
    # every job completed: total fairshare usage equals total charged work
    assert system.metrics().completed_jobs == 230
