"""Tests for job dependencies (after / afterok / afterany)."""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def job(cores=8, walltime=100.0, user="u", **kw):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user, **kw)


class TestValidation:
    def test_unknown_dependency_type_rejected(self):
        with pytest.raises(ValueError):
            job(depends_on="x", dependency_type="before")

    def test_default_type_afterok(self):
        assert job(depends_on="x").dependency_type == "afterok"


class TestAfterok:
    def test_waits_for_completion(self, system):
        first = system.submit(job(cores=4), FixedRuntimeApp(100.0))
        second = system.submit(
            job(cores=4, depends_on=first.job_id), FixedRuntimeApp(50.0)
        )
        system.run(until=50.0)
        # plenty of idle cores, but the dependency holds it back
        assert second.state is JobState.QUEUED
        system.run()
        assert second.start_time == pytest.approx(100.0)
        assert second.state is JobState.COMPLETED

    def test_cancelled_when_dependency_fails(self, system):
        class Crash:
            def launch(self, ctx):
                ctx.after(10.0, lambda: ctx._server.abort_job(ctx.job, "crash"))

        first = system.submit(job(cores=4), Crash())
        second = system.submit(
            job(cores=4, depends_on=first.job_id), FixedRuntimeApp(50.0)
        )
        system.run()
        assert first.state is JobState.ABORTED
        assert second.state is JobState.ABORTED
        assert second.start_time is None

    def test_dangling_dependency_holds_job(self, system):
        orphan = system.submit(
            job(cores=4, depends_on="job.does-not-exist"), FixedRuntimeApp(50.0)
        )
        system.run()
        assert orphan.state is JobState.QUEUED


class TestAfter:
    def test_released_at_dependency_start(self, system):
        first = system.submit(job(cores=4, walltime=200.0), FixedRuntimeApp(200.0))
        second = system.submit(
            job(cores=4, depends_on=first.job_id, dependency_type="after"),
            FixedRuntimeApp(50.0),
        )
        system.run()
        # "after" releases as soon as the target starts, so both overlap
        assert second.start_time == pytest.approx(0.0)


class TestAfterany:
    def test_released_on_abort(self, system):
        class Crash:
            def launch(self, ctx):
                ctx.after(10.0, lambda: ctx._server.abort_job(ctx.job, "crash"))

        first = system.submit(job(cores=4), Crash())
        second = system.submit(
            job(cores=4, depends_on=first.job_id, dependency_type="afterany"),
            FixedRuntimeApp(50.0),
        )
        system.run()
        assert second.state is JobState.COMPLETED
        assert second.start_time == pytest.approx(10.0)


class TestChains:
    def test_three_stage_pipeline(self, system):
        a = system.submit(job(cores=8), FixedRuntimeApp(100.0))
        b = system.submit(job(cores=8, depends_on=a.job_id), FixedRuntimeApp(100.0))
        c = system.submit(job(cores=8, depends_on=b.job_id), FixedRuntimeApp(100.0))
        system.run()
        assert (a.start_time, b.start_time, c.start_time) == (0.0, 100.0, 200.0)

    def test_dependent_job_invisible_to_delay_planning(self, system):
        # a held-back dependent job must not appear as a fairness victim
        from repro.apps.synthetic import EvolvingWorkApp
        from repro.jobs.evolution import EvolutionProfile
        from repro.jobs.job import JobFlexibility
        from repro.maui.config import DFSConfig, DFSPolicy, PrincipalLimits

        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                default_user=PrincipalLimits(target_delay_time=1.0),
            )
        )
        system = BatchSystem(2, 8, config)
        runner = system.submit(job(cores=8, walltime=300.0, user="r"), FixedRuntimeApp(300.0))
        evo = Job(
            request=ResourceRequest(cores=4),
            walltime=2000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        # this 12-core job would veto the grant — but it depends on the
        # runner and is therefore not yet eligible
        dependent = system.submit(
            job(cores=12, walltime=100.0, user="waiting", depends_on=runner.job_id),
            FixedRuntimeApp(100.0),
        )
        system.run(until=200.0)
        assert evo.dyn_granted == 1
