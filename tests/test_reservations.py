"""Tests for the priority-pass planner (StartNow/StartLater, depths)."""

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile
from repro.jobs.job import Job
from repro.maui.reservations import plan_static


def profile(nodes=4, cores=8, now=0.0):
    idx = list(range(nodes))
    return AvailabilityProfile(idx, {i: cores for i in idx}, now, {i: cores for i in idx})


def job(cores, walltime=100.0, submit=0.0):
    j = Job(request=ResourceRequest(cores=cores), walltime=walltime)
    j.submit_time = submit
    return j


class TestPlanStatic:
    def test_everything_fits_start_now(self):
        plan = plan_static([job(8), job(8), job(16)], profile(), 0.0, depth=2)
        assert len(plan.start_now) == 3
        assert not plan.start_later
        assert all(p.start == 0.0 for p in plan.start_now)

    def test_blocked_job_gets_future_reservation(self):
        jobs = [job(32, walltime=50.0), job(32, walltime=50.0)]
        plan = plan_static(jobs, profile(), 0.0, depth=2)
        assert len(plan.start_now) == 1
        assert len(plan.start_later) == 1
        assert plan.start_later[0].start == 50.0

    def test_depth_limits_reservations(self):
        jobs = [job(32, walltime=10.0) for _ in range(5)]
        plan = plan_static(jobs, profile(), 0.0, depth=2)
        assert len(plan.start_now) == 1
        assert len(plan.start_later) == 2  # planning stops at the depth

    def test_later_job_fits_around_reservation(self):
        # the 32-core job reserves t>=50; a short small job still starts now
        jobs = [job(16, walltime=50.0), job(32, walltime=100.0), job(4, walltime=10.0)]
        plan = plan_static(jobs, profile(), 0.0, depth=5)
        start_now_cores = [p.job.request.cores for p in plan.start_now]
        assert 4 in start_now_cores

    def test_small_job_must_not_delay_reservation(self):
        # the idle gap before the 32-core reservation lasts 50s; a 60s job
        # would push the reservation back, so it must wait for its own slot
        jobs = [job(16, walltime=50.0), job(32, walltime=100.0), job(4, walltime=60.0)]
        plan = plan_static(jobs, profile(), 0.0, depth=5)
        small = next(p for p in plan.start_later if p.job.request.cores == 4)
        assert small.start >= 50.0

    def test_oversized_job_is_unschedulable(self):
        plan = plan_static([job(33)], profile(), 0.0, depth=1)
        assert len(plan.unschedulable) == 1
        assert not plan.start_now and not plan.start_later

    def test_profile_is_mutated_with_claims(self):
        prof = profile()
        plan_static([job(32, walltime=100.0)], prof, 0.0, depth=1)
        assert prof.free_at(50.0) == {0: 0, 1: 0, 2: 0, 3: 0}

    def test_starts_by_job(self):
        jobs = [job(32, walltime=50.0), job(32, walltime=50.0)]
        plan = plan_static(jobs, profile(), 0.0, depth=1)
        starts = plan.starts_by_job()
        assert starts[jobs[0].job_id] == 0.0
        assert starts[jobs[1].job_id] == 50.0

    def test_planned_merges_in_time_order(self):
        jobs = [job(32, walltime=50.0), job(32, walltime=50.0), job(32, walltime=50.0)]
        plan = plan_static(jobs, profile(), 0.0, depth=5)
        assert [p.start for p in plan.planned] == [0.0, 50.0, 100.0]

    def test_planned_job_end(self):
        plan = plan_static([job(8, walltime=25.0)], profile(), 0.0, depth=1)
        assert plan.start_now[0].end == 25.0

    def test_sequential_reservations_stack(self):
        # two blocked jobs both need the whole machine: second waits for first
        jobs = [job(32, walltime=10.0), job(32, walltime=20.0), job(32, walltime=30.0)]
        plan = plan_static(jobs, profile(), 0.0, depth=5)
        assert [p.start for p in plan.start_later] == [10.0, 30.0]
