"""Randomized equivalence oracle: vectorized kernel vs reference profile.

The vectorized matrix kernel in :mod:`repro.cluster.profile` must be
*byte-identical* to the retained list-of-vectors implementation in
:mod:`repro.cluster.reference_profile` — same breakpoints, same free
vectors, same fit decisions, same ``(start, allocation)`` pairs, and the
same exceptions on the same inputs (including the atomicity of rejected
mutations).  This suite drives both implementations through thousands of
randomized interleaved operation sequences — including node fail/recover
churn, which the profile sees as infinite-horizon claims and their later
releases — and compares them after every single step.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile, NoFitError
from repro.cluster.reference_profile import ReferenceAvailabilityProfile

# 4 x 300 parametrized batches = 1200 randomized operation sequences
BATCHES = 4
SEQUENCES_PER_BATCH = 300
OPS_PER_SEQUENCE = 18


def assert_profiles_equal(new: AvailabilityProfile,
                          ref: ReferenceAvailabilityProfile) -> None:
    assert new.breakpoints == ref.breakpoints
    for t in ref.breakpoints:
        assert new.free_at(t) == ref.free_at(t)
        assert new.free_total_at(t) == sum(ref.free_at(t).values())


def random_request(rng: random.Random, num_nodes: int,
                   cores_per_node: int) -> ResourceRequest:
    if rng.random() < 0.4:  # shaped: nodes=N:ppn=P
        return ResourceRequest(
            nodes=rng.randint(1, num_nodes + 1),  # +1: sometimes impossible
            ppn=rng.randint(1, cores_per_node),
        )
    return ResourceRequest(cores=rng.randint(1, num_nodes * cores_per_node + 4))


def random_allocation(rng: random.Random, nodes: list[int],
                      cores_per_node: int) -> Allocation:
    picked = rng.sample(nodes, rng.randint(1, len(nodes)))
    return Allocation({n: rng.randint(1, cores_per_node) for n in picked})


def random_duration(rng: random.Random) -> float:
    if rng.random() < 0.1:
        return math.inf
    return rng.choice([1.0, 7.0, 25.0, 60.0, 240.0])


def fail_node_op(rng, new, ref, now, horizon, downed, nodes) -> None:
    """Take one node DOWN inside the profile horizon.

    A failed node is, from the profile's point of view, exactly a claim of
    its remaining free cores until infinity — that is how the scheduler's
    plans see a node that left: zero availability from the failure on.
    """
    candidates = [n for n in nodes if n not in downed]
    if not candidates:
        return
    node = rng.choice(candidates)
    t = now + rng.uniform(0, horizon)
    probe_times = [bp for bp in new.breakpoints if bp >= t] + [t]
    cores = min(new.free_at(x)[node] for x in probe_times)
    if cores <= 0:
        return  # nothing claimable: the node is already fully busy somewhere
    new.add_claim(t, math.inf, Allocation({node: cores}))
    ref.add_claim(t, math.inf, Allocation({node: cores}))
    downed[node] = (t, cores)


def recover_node_op(rng, new, ref, horizon, downed) -> None:
    """Bring a DOWN node back: release what the failure claimed.

    Unrelated release ops may have raised the node's free level since the
    failure, so the recovery can exceed capacity — in which case both
    implementations must reject it identically (and the node stays down).
    """
    if not downed:
        return
    node = rng.choice(sorted(downed))
    t_fail, cores = downed.pop(node)
    t = t_fail + rng.uniform(0, horizon)
    err_new = err_ref = None
    try:
        new.add_release(t, Allocation({node: cores}))
    except ValueError as e:
        err_new = str(e)
    try:
        ref.add_release(t, Allocation({node: cores}))
    except ValueError as e:
        err_ref = str(e)
    assert err_new == err_ref


def run_sequence(rng: random.Random) -> None:
    num_nodes = rng.randint(1, 8)
    cores_per_node = rng.randint(1, 16)
    # non-contiguous, shuffled node indices exercise the column mapping
    nodes = rng.sample(range(100), num_nodes)
    now = rng.choice([0.0, 5.5, 1000.0])
    free = {n: rng.randint(0, cores_per_node) for n in nodes}
    capacity = (
        {n: cores_per_node for n in nodes} if rng.random() < 0.7 else None
    )
    new = AvailabilityProfile(nodes, free, now, capacity)
    ref = ReferenceAvailabilityProfile(nodes, free, now, capacity)
    assert_profiles_equal(new, ref)

    #: nodes currently DOWN in this sequence: node -> (fail time, cores)
    downed: dict[int, tuple[float, int]] = {}
    horizon = 300.0
    for _ in range(OPS_PER_SEQUENCE):
        op = rng.random()
        if op < 0.26:  # claim (exercises both success and rollback paths)
            start = now + rng.uniform(0, horizon)
            end = math.inf if rng.random() < 0.1 else start + random_duration(rng)
            alloc = random_allocation(rng, nodes, cores_per_node)
            err_new = err_ref = None
            try:
                new.add_claim(start, end, alloc)
            except ValueError as e:
                err_new = str(e)
            try:
                ref.add_claim(start, end, alloc)
            except ValueError as e:
                err_ref = str(e)
            assert err_new == err_ref
        elif op < 0.44:  # release (exercises the atomic capacity check)
            t = now + rng.uniform(0, horizon)
            alloc = random_allocation(rng, nodes, cores_per_node)
            err_new = err_ref = None
            try:
                new.add_release(t, alloc)
            except ValueError as e:
                err_new = str(e)
            try:
                ref.add_release(t, alloc)
            except ValueError as e:
                err_ref = str(e)
            assert err_new == err_ref
        elif op < 0.62:  # fits_at
            start = now + rng.uniform(0, horizon)
            duration = random_duration(rng)
            request = random_request(rng, num_nodes, cores_per_node)
            got = new.fits_at(start, duration, request)
            assert got == ref.fits_at(start, duration, request)
            # the backfill prune is a pure short-circuit: a quick-rejected
            # request must be one fits_at would have refused anyway
            if new.quick_reject(start, request):
                assert got is None
        elif op < 0.80:  # earliest_fit
            duration = random_duration(rng)
            request = random_request(rng, num_nodes, cores_per_node)
            after = (
                None if rng.random() < 0.3 else now + rng.uniform(0, horizon)
            )
            got_new = got_ref = None
            try:
                got_new = new.earliest_fit(request, duration, after=after)
            except NoFitError:
                pass
            try:
                got_ref = ref.earliest_fit(request, duration, after=after)
            except NoFitError:
                pass
            assert got_new == got_ref
            # can_ever_fit False promises earliest_fit raises for any duration
            if not new.can_ever_fit(request):
                assert got_new is None
        elif op < 0.86:  # node failure: churn nodes out of the profile
            fail_node_op(rng, new, ref, now, horizon, downed, nodes)
        elif op < 0.93:  # node recovery: churn them back in
            recover_node_op(rng, new, ref, horizon, downed)
        elif op < 0.97:  # advance: clip history, every later query unchanged
            t = now + rng.uniform(0, horizon / 4)
            survivors = [bp for bp in ref.breakpoints if bp >= t]
            expected = {bp: ref.free_at(bp) for bp in survivors}
            expected_at_t = ref.free_at(t)
            new.advance_to(t)
            ref.advance_to(t)
            now = t  # later ops must respect the new profile start
            assert new.breakpoints[0] == t
            assert new.free_at(t) == expected_at_t
            for bp in survivors:
                assert new.free_at(bp) == expected[bp]
        else:  # copy: keep working on the clones, originals must not move
            before = (new.breakpoints, {t: new.free_at(t) for t in new.breakpoints})
            new2, ref2 = new.copy(), ref.copy()
            alloc = random_allocation(rng, nodes, cores_per_node)
            t = now + rng.uniform(0, horizon)
            try:
                new2.add_release(t, alloc)
            except ValueError:
                pass
            assert new.breakpoints == before[0]
            assert {t: new.free_at(t) for t in new.breakpoints} == before[1]
            new, ref = new2, ref2
            try:
                ref.add_release(t, alloc)
            except ValueError:
                pass
        assert_profiles_equal(new, ref)


@pytest.mark.parametrize("batch", range(BATCHES))
def test_randomized_operation_sequences(batch):
    """>=1000 random op sequences: every step identical to the oracle."""
    rng = random.Random(0xE5B + batch)
    for _ in range(SEQUENCES_PER_BATCH):
        run_sequence(rng)


def test_failed_claim_is_atomic():
    """A rejected claim leaves free counts untouched (no partial subtraction).

    Breakpoint *insertions* from the failed attempt may remain (they are
    semantically neutral, exactly as under the historic rollback path); the
    free-core step function itself must not move.
    """
    probes = [0.0, 5.0, 9.9, 10.0, 14.9, 15.0, 19.9, 20.0, 99.0]
    profile = AvailabilityProfile([0, 1], {0: 4, 1: 4}, 0.0, {0: 4, 1: 4})
    profile.add_claim(10.0, 20.0, Allocation({0: 3}))  # only 1 free on node 0
    before = [profile.free_at(t) for t in probes]
    with pytest.raises(ValueError, match="oversubscribes"):
        profile.add_claim(5.0, 15.0, Allocation({0: 2, 1: 1}))
    assert [profile.free_at(t) for t in probes] == before


def test_failed_release_is_atomic():
    """A release above capacity is rejected before any interval is touched."""
    profile = AvailabilityProfile([0, 1], {0: 2, 1: 4}, 0.0, {0: 4, 1: 4})
    profile.add_claim(10.0, 20.0, Allocation({1: 4}))
    before = {t: profile.free_at(t) for t in profile.breakpoints}
    # freeing 3 on node 0 exceeds its capacity of 4 from t=0 on
    with pytest.raises(ValueError, match="exceeds node capacity"):
        profile.add_release(0.0, Allocation({0: 3, 1: 2}))
    assert {t: profile.free_at(t) for t in profile.breakpoints} == before


def test_advance_preserves_queries_and_rejects_past():
    profile = AvailabilityProfile([0, 1], {0: 4, 1: 4}, 0.0, {0: 4, 1: 4})
    profile.add_claim(10.0, 20.0, Allocation({0: 3}))
    fit_before = profile.earliest_fit(ResourceRequest(cores=7), 5.0, after=12.0)
    profile.advance_to(12.0)
    assert profile.breakpoints[0] == 12.0
    assert profile.now == 12.0
    assert profile.free_at(12.0) == {0: 1, 1: 4}
    assert profile.earliest_fit(ResourceRequest(cores=7), 5.0, after=12.0) == fit_before
    with pytest.raises(ValueError, match="precedes profile start"):
        profile.advance_to(5.0)


def test_incremental_scheduler_profile_matches_scratch_rebuild():
    """The scheduler's incremental advance is pinned to the from-scratch
    build: at every advance during a full ESP run, the advanced profile's
    step function (over the union of both breakpoint sets — the advance may
    keep semantically-neutral leftovers) must equal the scratch rebuild's.
    """
    from repro.experiments.configs import all_configurations
    from repro.maui.scheduler import MauiScheduler
    from repro.system import BatchSystem
    from repro.workloads.esp import make_esp_workload

    original = MauiScheduler._advance_profile
    advances = 0

    def checked(self, partitions):
        nonlocal advances
        profile = original(self, partitions)
        if profile is not None:
            advances += 1
            scratch = self._build_profile_uncached(partitions)
            assert profile._nodes == scratch._nodes
            for t in sorted(set(profile.breakpoints) | set(scratch.breakpoints)):
                assert profile.free_at(t) == scratch.free_at(t), t
        return profile

    MauiScheduler._advance_profile = checked
    try:
        config = next(c for c in all_configurations() if c.name == "Dyn-HP")
        system = BatchSystem(num_nodes=8, cores_per_node=4, config=config.maui)
        workload = make_esp_workload(
            total_cores=32, dynamic=config.dynamic_workload, seed=2014
        )
        workload.submit_to(system)
        system.run(max_events=5_000_000)
    finally:
        MauiScheduler._advance_profile = original
    assert advances > 100
    assert system.scheduler.stats["profile_advance_fallbacks"] == 0
