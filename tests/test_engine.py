"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import (
    Engine,
    PRIORITY_COMPLETION,
    PRIORITY_LIMIT,
    PRIORITY_NORMAL,
    PRIORITY_SCHEDULER,
)


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.at(3.0, fired.append, "c")
        engine.at(1.0, fired.append, "a")
        engine.at(2.0, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_after_is_relative(self, engine):
        engine.at(10.0, lambda: engine.after(5.0, lambda: None))
        engine.run()
        assert engine.now == 15.0

    def test_same_time_priority_order(self, engine):
        fired = []
        engine.at(1.0, fired.append, "sched", priority=PRIORITY_SCHEDULER)
        engine.at(1.0, fired.append, "limit", priority=PRIORITY_LIMIT)
        engine.at(1.0, fired.append, "normal", priority=PRIORITY_NORMAL)
        engine.at(1.0, fired.append, "completion", priority=PRIORITY_COMPLETION)
        engine.run()
        assert fired == ["completion", "normal", "limit", "sched"]

    def test_same_time_same_priority_fifo(self, engine):
        fired = []
        for tag in "abcde":
            engine.at(1.0, fired.append, tag)
        engine.run()
        assert fired == list("abcde")

    def test_scheduling_in_past_rejected(self, engine):
        engine.at(10.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(5.0, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.after(-1.0, lambda: None)

    def test_schedule_at_current_time_from_callback_runs(self, engine):
        fired = []
        engine.at(1.0, lambda: engine.at(1.0, fired.append, "nested"))
        engine.run()
        assert fired == ["nested"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        handle = engine.at(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self, engine):
        handle = engine.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.run() == 0

    def test_cancel_from_earlier_event(self, engine):
        fired = []
        later = engine.at(2.0, fired.append, "later")
        engine.at(1.0, later.cancel)
        engine.run()
        assert fired == []

    def test_pending_excludes_cancelled(self, engine):
        h1 = engine.at(1.0, lambda: None)
        engine.at(2.0, lambda: None)
        h1.cancel()
        assert engine.pending == 1


class TestRun:
    def test_run_until_stops_before_later_events(self, engine):
        fired = []
        engine.at(1.0, fired.append, 1)
        engine.at(10.0, fired.append, 10)
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_run_until_includes_boundary(self, engine):
        fired = []
        engine.at(5.0, fired.append, 5)
        engine.run(until=5.0)
        assert fired == [5]

    def test_run_returns_processed_count(self, engine):
        for t in (1.0, 2.0, 3.0):
            engine.at(t, lambda: None)
        assert engine.run() == 3

    def test_max_events_guard(self, engine):
        def reschedule():
            engine.after(1.0, reschedule)

        engine.at(0.0, reschedule)
        with pytest.raises(RuntimeError, match="max_events"):
            engine.run(max_events=50)

    def test_run_not_reentrant(self, engine):
        def nested():
            engine.run()

        engine.at(1.0, nested)
        with pytest.raises(RuntimeError, match="reentrant"):
            engine.run()

    def test_step_single_event(self, engine):
        fired = []
        engine.at(1.0, fired.append, "a")
        engine.at(2.0, fired.append, "b")
        assert engine.step() is True
        assert fired == ["a"]
        assert engine.step() is True
        assert engine.step() is False

    def test_processed_counter(self, engine):
        for t in (1.0, 2.0):
            engine.at(t, lambda: None)
        engine.run()
        assert engine.processed == 2

    def test_peek_time(self, engine):
        assert engine.peek_time() is None
        h = engine.at(3.0, lambda: None)
        engine.at(7.0, lambda: None)
        assert engine.peek_time() == 3.0
        h.cancel()
        assert engine.peek_time() == 7.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_property_events_fire_in_nondecreasing_time(times):
    """Regardless of insertion order, firing times never decrease."""
    engine = Engine()
    observed = []
    for t in times:
        engine.at(t, lambda t=t: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert len(observed) == len(times)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=40,
    )
)
def test_property_priority_respected_within_timestamp(events):
    """At equal times, lower priority values always fire first."""
    engine = Engine()
    fired = []
    for t, prio in events:
        engine.at(t, lambda t=t, p=prio: fired.append((t, p)), priority=prio)
    engine.run()
    assert fired == sorted(fired, key=lambda x: (x[0], x[1]))


class TestTombstoneCompaction:
    """Cancelled entries must not grow the heap without bound."""

    def test_heap_bounded_under_schedule_cancel_cycles(self):
        engine = Engine()
        live = [engine.at(1e9 + i, lambda: None) for i in range(32)]
        for i in range(10_000):
            live.pop(0).cancel()
            live.append(engine.at(2e9 + i, lambda: None))
        assert engine.pending == 32
        assert engine.heap_size < 4 * 32  # bounded, not 10k tombstones
        assert engine._compactions > 0

    def test_compaction_preserves_order_and_events(self):
        engine = Engine()
        fired = []
        keep = [engine.at(float(i), fired.append, i) for i in range(0, 200, 2)]
        drop = [engine.at(float(i), fired.append, i) for i in range(1, 200, 2)]
        for handle in drop:
            handle.cancel()
        engine.run()
        assert fired == list(range(0, 200, 2))
        assert engine.pending == 0

    def test_cancel_after_fire_is_not_a_tombstone(self):
        engine = Engine()
        handle = engine.at(1.0, lambda: None)
        engine.run()
        handle.cancel()
        assert engine._tombstones == 0
        assert engine.heap_size == 0

    def test_double_cancel_counts_once(self):
        engine = Engine()
        handle = engine.at(1.0, lambda: None)
        engine.at(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine._tombstones == 1
        assert engine.pending == 1

    def test_pending_is_consistent_during_churn(self):
        engine = Engine()
        handles = [engine.at(10.0 + i, lambda: None) for i in range(100)]
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending == 50
        engine.run()
        assert engine.pending == 0
        assert engine.processed == 50
