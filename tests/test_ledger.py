"""Tests for the causal decision ledger and the delay-attribution engine.

Covers the PR contract end to end: off by default with a bit-identical
schedule, structured decisions for every verdict kind, throttle-transition
dedup, preemption and hold handling, JSONL export, trace mirroring,
registry counters — and the acceptance invariant on a full seeded ESP
run: every finished rigid job's attribution components sum *exactly* to
its measured wait, with the per-grant ``dyn_inflicted`` totals reconciling
against the grant-time ``measure_delays`` results.
"""

import json
import re

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.experiments.configs import dynamic_target_config
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.obs import DecisionKind, DecisionLedger, Telemetry
from repro.obs.ledger import ATTRIBUTION_EPSILON
from repro.sim.events import EventKind
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload


def rigid(cores, walltime, user="u", **kw):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user, **kw)


def evolving(cores, walltime, user="evo", extra=4, at=0.16, retries=(0.25,)):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(at, ResourceRequest(cores=extra), retries),
    )


def ledger_system(config=None, num_nodes=4, cores_per_node=8):
    telemetry = Telemetry(decision_ledger=True)
    system = BatchSystem(
        num_nodes, cores_per_node, config or MauiConfig(), telemetry=telemetry
    )
    return system, telemetry.ledger


class TestOffByDefault:
    def test_plain_telemetry_has_no_ledger(self):
        assert Telemetry().ledger is None

    def test_uninstrumented_system_has_no_ledger_hooks(self, system):
        assert system.scheduler._ledger is None
        system.submit(rigid(8, 50), FixedRuntimeApp(50))
        system.run()
        assert system.trace.count(EventKind.DECISION) == 0

    def test_disabled_run_schedule_identical_to_ledger_run(self):
        """The ledger observes; it must never steer the schedule."""

        def starts(with_ledger):
            if with_ledger:
                system, _ = ledger_system()
            else:
                system = BatchSystem(4, 8, MauiConfig())
            jobs = [
                system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100)),
                system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200)),
                system.submit(rigid(16, 50, "c"), FixedRuntimeApp(50)),
                system.submit(evolving(8, 500, "e"), EvolvingWorkApp(500)),
            ]
            system.run()
            return [(j.start_time, j.end_time, j.backfilled) for j in jobs]

        assert starts(False) == starts(True)

    def test_observable_trace_identical_modulo_decisions(self):
        """Ledger-on adds only DECISION mirror events to the trace."""

        def run(with_ledger):
            if with_ledger:
                system, _ = ledger_system()
            else:
                system = BatchSystem(4, 8, MauiConfig())
            system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
            system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
            system.submit(evolving(8, 500, "e"), EvolvingWorkApp(500))
            system.run()
            return [
                (e.time, e.kind.value, sorted(e.payload))
                for e in system.trace
                if e.kind is not EventKind.DECISION
            ]

        assert run(False) == run(True)


class TestDecisionRecording:
    def test_static_start_payload(self):
        system, ledger = ledger_system()
        j = system.submit(rigid(8, 50, "alice"), FixedRuntimeApp(50))
        system.run()
        (start,) = ledger.of_kind(DecisionKind.STATIC_START)
        assert start.job_id == j.job_id
        assert start.payload["user"] == "alice"
        assert start.payload["cores"] == 8
        assert start.payload["wait"] == 0.0
        assert len(start.payload["profile_fingerprint"]) == 3

    def test_backfill_start_names_the_hole(self):
        system, ledger = ledger_system()
        a = system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
        b = system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
        c = system.submit(rigid(16, 50, "c"), FixedRuntimeApp(50))
        system.run()
        (bf,) = ledger.of_kind(DecisionKind.BACKFILL_START)
        assert bf.job_id == c.job_id
        assert bf.payload["jumped"] == [b.job_id]
        # the hole closes when b's reservation begins (t=100)
        assert bf.payload["hole_until"] == pytest.approx(100.0)

    def test_reservation_create_names_blockers(self):
        system, ledger = ledger_system()
        a = system.submit(rigid(32, 300, "a"), FixedRuntimeApp(300))
        b = system.submit(rigid(32, 100, "b"), FixedRuntimeApp(100))
        system.run(until=0.0)
        (res,) = ledger.of_kind(DecisionKind.RESERVATION_CREATE)
        assert res.job_id == b.job_id
        assert res.payload["start"] == pytest.approx(300.0)
        assert res.payload["waiting_on"] == [a.job_id]

    def test_reservation_not_rerecorded_when_unchanged(self):
        system, ledger = ledger_system(MauiConfig(timer_interval=10.0))
        system.scheduler.iteration_skip_enabled = False
        a = system.submit(rigid(32, 300, "a"), FixedRuntimeApp(300))
        b = system.submit(rigid(32, 100, "b"), FixedRuntimeApp(100))
        system.run(until=100.0)
        # dozens of iterations re-planned the same reservation; one decision
        assert len(ledger.of_kind(DecisionKind.RESERVATION_CREATE)) == 1
        assert len(ledger.of_kind(DecisionKind.RESERVATION_SLIDE)) == 0

    def test_throttle_recorded_on_transition_only(self):
        system, ledger = ledger_system(
            MauiConfig(max_running_jobs_per_user=1, timer_interval=10.0)
        )
        system.scheduler.iteration_skip_enabled = False
        a = system.submit(rigid(4, 300, "hog"), FixedRuntimeApp(300))
        b = system.submit(rigid(4, 300, "hog"), FixedRuntimeApp(300))
        system.run(until=200.0)
        throttles = ledger.of_kind(DecisionKind.THROTTLE_REJECT)
        assert len(throttles) == 1
        assert throttles[0].job_id == b.job_id
        assert throttles[0].payload["limit"] == (
            "throttled by max_running_jobs_per_user=1"
        )

    def test_dyn_grant_decision(self):
        system, ledger = ledger_system()
        evo = system.submit(evolving(8, 500, "evo", extra=4), EvolvingWorkApp(500))
        hog = system.submit(rigid(16, 500, "hog"), FixedRuntimeApp(500))
        system.run()
        grants = ledger.of_kind(DecisionKind.DYN_GRANT)
        assert grants and grants[0].job_id == evo.job_id
        assert grants[0].payload["grant_id"] == "grant.1"
        assert grants[0].payload["policy"] == "NONE"

    def test_dyn_deny_on_insufficient_resources(self):
        system, ledger = ledger_system(num_nodes=1)
        evo = system.submit(evolving(4, 500, "evo", extra=8), EvolvingWorkApp(500))
        hog = system.submit(rigid(4, 500, "hog"), FixedRuntimeApp(500))
        system.run(until=300.0)
        denies = ledger.of_kind(DecisionKind.DYN_DENY)
        assert denies
        assert denies[0].payload["deny_kind"] == "resources"
        assert denies[0].payload["reason"] == "insufficient resources"

    def test_preemption_decisions(self):
        system, ledger = ledger_system(
            MauiConfig(preemption_for_dynamic=True), num_nodes=2
        )
        evo = system.submit(evolving(8, 1000, "evo"), EvolvingWorkApp(1000))
        blocker = system.submit(rigid(16, 500, "big"), FixedRuntimeApp(500))
        small = system.submit(rigid(8, 800, "small"), FixedRuntimeApp(800))
        system.run(until=200.0)
        (preempt,) = ledger.of_kind(DecisionKind.PREEMPTION)
        assert preempt.job_id == small.job_id
        assert preempt.payload["displaced_by"] == evo.job_id
        (grant,) = ledger.of_kind(DecisionKind.DYN_GRANT)
        assert grant.payload["preempted"] == [small.job_id]
        assert grant.payload["reason"] == "preempted backfill"
        # the preempted job's lost run shows up as a requeued component
        attribution = ledger.attribution(small.job_id, upto=system.now)
        assert attribution["components"].get("requeued", 0.0) > 0.0

    def test_extension_verdicts(self):
        from tests.test_walltime_extension import OverrunningApp, overrunner

        system, ledger = ledger_system()
        job = system.submit(overrunner(), OverrunningApp())
        system.run()
        (grant,) = ledger.of_kind(DecisionKind.EXTENSION_GRANT)
        assert grant.job_id == job.job_id
        assert grant.payload["walltime_extension"] == 200.0
        assert grant.payload["cores"] == 0  # time, not resources


class TestHolds:
    def test_hold_wait_is_attributed_to_the_hold(self):
        system, ledger = ledger_system(MauiConfig(timer_interval=10.0))
        system.scheduler.iteration_skip_enabled = False
        j = system.submit(rigid(8, 50, "alice"), FixedRuntimeApp(50))
        system.server.hold_job(j, kind="user")
        system.run(until=100.0)
        assert j.state is JobState.QUEUED
        system.server.release_hold(j)
        system.run(until=200.0)  # bounded: the periodic timer re-arms forever
        assert j.state is JobState.COMPLETED
        attribution = ledger.attribution(j.job_id)
        assert attribution["components"]["user_held"] == pytest.approx(
            100.0, abs=1e-6
        )
        assert attribution["wait"] == pytest.approx(j.wait_time, abs=1e-9)
        assert system.trace.count(EventKind.JOB_HOLD) == 1
        assert system.trace.count(EventKind.JOB_RELEASE) == 1

    def test_hold_validation(self, system):
        j = system.submit(rigid(8, 50), FixedRuntimeApp(50))
        with pytest.raises(ValueError):
            system.server.hold_job(j, kind="bogus")
        system.run()
        with pytest.raises(RuntimeError):
            system.server.hold_job(j)  # finished jobs cannot be held


class TestExportAndMirroring:
    def test_every_decision_mirrored_into_trace(self):
        system, ledger = ledger_system()
        system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
        system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
        system.submit(evolving(8, 500, "e"), EvolvingWorkApp(500))
        system.run()
        mirrored = system.trace.of_kind(EventKind.DECISION)
        assert len(mirrored) == len(ledger)
        for event, decision in zip(mirrored, ledger):
            assert event.payload["decision"] == decision.kind.value
            assert event.payload["seq"] == decision.seq
            assert event.time == decision.time

    def test_export_jsonl_round_trip(self, tmp_path):
        system, ledger = ledger_system()
        system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
        system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
        system.run()
        path = tmp_path / "decisions.jsonl"
        count = ledger.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(ledger)
        restored = [json.loads(line) for line in lines]
        assert restored == [d.to_dict() for d in ledger]

    def test_registry_counters(self):
        system, ledger = ledger_system()
        registry = system.telemetry.registry
        system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
        system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
        system.run()
        per_kind = {
            dict(inst.labels)["kind"]: inst.value
            for inst in registry.collect()
            if inst.name == "repro_ledger_decisions_total"
        }
        assert sum(per_kind.values()) == len(ledger)
        assert per_kind == ledger.summary()
        assert registry.value("repro_ledger_waits_closed_total") == 2.0

    def test_decisions_deterministic_across_identical_runs(self):
        """Two identical runs emit structurally identical decision streams
        (job ids are process-global; normalise by first appearance)."""

        def run_once():
            system, ledger = ledger_system()
            system.submit(rigid(16, 100, "a"), FixedRuntimeApp(100))
            system.submit(rigid(32, 200, "b"), FixedRuntimeApp(200))
            system.submit(rigid(16, 50, "c"), FixedRuntimeApp(50))
            system.submit(evolving(8, 500, "e"), EvolvingWorkApp(500))
            system.run()
            text = "\n".join(json.dumps(d.to_dict()) for d in ledger)
            mapping: dict[str, str] = {}
            for match in re.finditer(r"job\.\d+", text):
                mapping.setdefault(match.group(), f"J{len(mapping)}")
            return re.sub(r"job\.\d+", lambda m: mapping[m.group()], text)

        assert run_once() == run_once()


class TestAttributionUnit:
    def test_unknown_job_returns_none(self):
        assert DecisionLedger().attribution("job.nope") is None

    def test_open_timeline_requires_horizon(self):
        system, ledger = ledger_system()
        a = system.submit(rigid(32, 300, "a"), FixedRuntimeApp(300))
        b = system.submit(rigid(32, 100, "b"), FixedRuntimeApp(100))
        system.run(until=50.0)
        assert ledger.attribution(b.job_id) is None
        partial = ledger.attribution(b.job_id, upto=system.now)
        assert partial["wait"] == pytest.approx(50.0, abs=1e-9)

    def test_components_sum_to_wait_for_simple_block(self):
        system, ledger = ledger_system()
        a = system.submit(rigid(32, 300, "a"), FixedRuntimeApp(300))
        b = system.submit(rigid(32, 100, "b"), FixedRuntimeApp(100))
        system.run()
        attribution = ledger.attribution(b.job_id)
        assert attribution["started"] == pytest.approx(300.0)
        total = sum(attribution["components"].values()) + sum(
            attribution["dyn_inflicted"].values()
        )
        assert total == pytest.approx(b.wait_time, abs=ATTRIBUTION_EPSILON)
        # b held the reservation the whole time
        assert attribution["components"]["reservation_held"] == pytest.approx(
            300.0, abs=1e-6
        )


# ----------------------------------------------------------------------
# acceptance: the seeded dynamic ESP workload under a DFS target policy
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def esp_dyn_run():
    """Dyn-600 (the paper's esp_dyn config with DFSTargetDelay) with the
    ledger on: the run every acceptance invariant is checked against."""
    telemetry = Telemetry(decision_ledger=True)
    system = BatchSystem(15, 8, dynamic_target_config(600.0), telemetry=telemetry)
    make_esp_workload(total_cores=120, dynamic=True, seed=2014).submit_to(system)
    system.run(max_events=5_000_000)
    assert not system.server.queue and system.server.active_count == 0
    return system, telemetry.ledger


class TestESPAcceptance:
    def test_every_finished_rigid_job_attribution_sums_exactly(self, esp_dyn_run):
        system, ledger = esp_dyn_run
        checked = 0
        for job in system.server.jobs.values():
            if job.flexibility is not JobFlexibility.RIGID or not job.is_finished:
                continue
            attribution = ledger.attribution(job.job_id)
            assert attribution is not None, job.job_id
            total = sum(attribution["components"].values()) + sum(
                attribution["dyn_inflicted"].values()
            )
            assert abs(total - job.wait_time) < ATTRIBUTION_EPSILON, job.job_id
            assert abs(attribution["wait"] - job.wait_time) < ATTRIBUTION_EPSILON
            checked += 1
        assert checked > 100  # the ESP workload has 230 jobs, most rigid

    def test_per_grant_totals_reconcile_with_grant_time_measurements(
        self, esp_dyn_run
    ):
        system, ledger = esp_dyn_run
        grants = ledger.grants()
        assert grants
        # collect every job's dyn_inflicted charges, bucketed by grant
        by_grant: dict[str, float] = {}
        for job in system.server.jobs.values():
            attribution = ledger.attribution(job.job_id, upto=system.now)
            if attribution is None:
                continue
            for grant_id, delay in attribution["dyn_inflicted"].items():
                by_grant[grant_id] = by_grant.get(grant_id, 0.0) + delay
        for decision in grants:
            grant_id = decision.payload["grant_id"]
            measured = decision.payload["total_delay"]
            # decision payload == ledger index == sum over job attributions
            assert ledger.grant_total(grant_id) == measured
            assert by_grant.get(grant_id, 0.0) == pytest.approx(
                measured, abs=ATTRIBUTION_EPSILON
            )
            assert measured == pytest.approx(
                sum(v["delay"] for v in decision.payload["victims"]),
                abs=ATTRIBUTION_EPSILON,
            )

    def test_dfs_charges_reconcile_with_scheduler_stats(self, esp_dyn_run):
        system, ledger = esp_dyn_run
        charged = sum(d.payload["charged"] for d in ledger.grants())
        assert charged == pytest.approx(
            system.scheduler.stats["total_delay_charged"], abs=1e-9
        )

    def test_displaced_rigid_jobs_are_rigid(self, esp_dyn_run):
        system, ledger = esp_dyn_run
        for decision in ledger.grants():
            for job_id in decision.payload["displaced_rigid"]:
                assert system.server.jobs[job_id].flexibility is JobFlexibility.RIGID

    def test_reservation_slides_carry_causal_evidence(self, esp_dyn_run):
        _, ledger = esp_dyn_run
        slides = ledger.of_kind(DecisionKind.RESERVATION_SLIDE)
        assert slides  # dynamic grants push reservations around
        for decision in slides:
            payload = decision.payload
            assert payload["slide"] == pytest.approx(
                payload["start"] - payload["previous_start"], abs=1e-9
            )

    def test_ledger_counter_matches_inflicted_total(self, esp_dyn_run):
        system, ledger = esp_dyn_run
        total = sum(d.payload["total_delay"] for d in ledger.grants())
        assert system.telemetry.registry.value(
            "repro_ledger_dyn_inflicted_seconds_total"
        ) == pytest.approx(total, abs=1e-6)
