"""Tests for the JSON artifact export."""

import json

import pytest

from repro.experiments.export import export_all, export_json


@pytest.fixture(scope="module")
def data():
    # fig12 timing is wall-clock noise; exclude it for a fast, stable test
    return export_all(seed=2014, include_fig12=False)


class TestExportAll:
    def test_top_level_keys(self, data):
        assert {"paper", "seed", "table1", "table2", "fig7_quadflow",
                "fig8_to_11_waits"} <= set(data)

    def test_table2_rows(self, data):
        names = [row["config"] for row in data["table2"]]
        assert names == ["Static", "Dyn-HP", "Dyn-500", "Dyn-600"]
        for row in data["table2"]:
            assert "paper_reference" in row
            assert row["util_pct"] > 0

    def test_wait_series_complete(self, data):
        assert len(data["fig8_to_11_waits"]) == 230
        first = data["fig8_to_11_waits"][0]
        assert {"index", "type", "Static", "Dyn-HP", "Dyn-500", "Dyn-600"} <= set(first)

    def test_quadflow_entries(self, data):
        assert len(data["fig7_quadflow"]) == 6
        dynamic = [r for r in data["fig7_quadflow"] if r["scenario"] == "dynamic"]
        assert all(r["expanded_at_phase"] is not None for r in dynamic)

    def test_json_serialisable(self, data):
        text = json.dumps(data)
        assert json.loads(text) == json.loads(json.dumps(data))


def test_export_json_round_trips():
    text = export_json(seed=2014, include_fig12=False)
    parsed = json.loads(text)
    assert parsed["seed"] == 2014
