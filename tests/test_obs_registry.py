"""Metrics registry semantics: counters, gauges, histograms, identity."""

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_fast_forwards(self):
        c = Counter("c")
        c.set_total(10)
        c.set_total(10)  # no movement is fine
        assert c.value == 10

    def test_set_total_cannot_move_backwards(self):
        c = Counter("c")
        c.set_total(10)
        with pytest.raises(ValueError):
            c.set_total(9)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_callback_backed(self):
        state = {"v": 7}
        g = Gauge("g", callback=lambda: state["v"])
        assert g.value == 7.0
        state["v"] = 9
        assert g.value == 9.0

    def test_callback_backed_rejects_set(self):
        g = Gauge("g", callback=lambda: 1.0)
        with pytest.raises(RuntimeError):
            g.set(2)


class TestHistogram:
    def test_buckets_are_cumulative(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 4.0, 99.0):
            h.observe(v)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 3), (5.0, 4)]
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 1.5 + 1.7 + 4.0 + 99.0)
        assert h.mean == pytest.approx(h.sum / 5)

    def test_bounds_sorted_and_deduped(self):
        h = Histogram("h", buckets=(5.0, 1.0, 2.0))
        assert h.upper_bounds == (1.0, 2.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_default_buckets_cover_scheduler_scales(self):
        assert DEFAULT_BUCKETS[0] <= 1e-4
        assert DEFAULT_BUCKETS[-1] >= 1.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "help")
        b = reg.counter("jobs_total")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.gauge("depth", labels={"user": "alice"})
        b = reg.gauge("depth", labels={"user": "bob"})
        assert a is not b
        # label order does not matter for identity
        c = reg.gauge("two", labels={"x": "1", "y": "2"})
        d = reg.gauge("two", labels={"y": "2", "x": "1"})
        assert c is d

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.gauge("n")

    def test_collect_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        reg.gauge("a_depth", labels={"u": "x"})
        names = [i.name for i in reg.collect()]
        assert names == sorted(names)

    def test_value_convenience(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        assert reg.value("c") == 4.0
        assert reg.value("missing") == 0.0
        reg.histogram("h")
        with pytest.raises(TypeError):
            reg.value("h")

    def test_help_and_type_metadata(self):
        reg = MetricsRegistry()
        reg.counter("c", "counts things")
        assert reg.help_for("c") == "counts things"
        assert reg.type_of("c") == "counter"
        assert reg.type_of("missing") == "untyped"


class TestExporterLabelEscaping:
    """Prometheus text exposition must escape label values per the spec:
    backslash, double-quote, and newline."""

    def _line_for(self, value):
        from repro.obs.exporters import to_prometheus_text

        reg = MetricsRegistry()
        reg.gauge("g", labels={"account": value}).set(1.0)
        (line,) = [
            l for l in to_prometheus_text(reg).splitlines()
            if not l.startswith("#")
        ]
        return line

    def test_plain_value_verbatim(self):
        assert self._line_for("physics") == 'g{account="physics"} 1'

    def test_quote_escaped(self):
        assert self._line_for('say "hi"') == 'g{account="say \\"hi\\""} 1'

    def test_backslash_escaped(self):
        assert self._line_for(r"a\b") == 'g{account="a\\\\b"} 1'

    def test_newline_escaped(self):
        line = self._line_for("two\nlines")
        assert line == 'g{account="two\\nlines"} 1'
        # the exposition stays one line per sample
        assert "\n" not in line

    def test_escaping_keeps_exposition_parseable(self):
        from repro.obs.exporters import parse_prometheus_text, to_prometheus_text

        reg = MetricsRegistry()
        reg.counter("c_total", labels={"u": 'we"ird\\\n'}).inc(3)
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        assert list(parsed.values()) == [3.0]
