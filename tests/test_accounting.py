"""Tests for the usage-accounting ledger."""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import MauiConfig
from repro.rms.accounting import AccountingLedger
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload


class TestBasicCharges:
    def test_rigid_job_charge(self, system):
        job = Job(request=ResourceRequest(cores=8), walltime=200.0, user="alice")
        system.submit(job, FixedRuntimeApp(100.0))
        system.run()
        ledger = AccountingLedger(system.trace)
        charge = ledger.job(job.job_id)
        assert charge.base_core_seconds == pytest.approx(8 * 100.0)
        assert charge.expansion_core_seconds == 0.0
        assert charge.total_core_hours == pytest.approx(800.0 / 3600.0)

    def test_expansion_charged_from_grant_time(self, system):
        job = Job(
            request=ResourceRequest(cores=4),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
        )
        system.submit(job, EvolvingWorkApp(1000.0))
        system.run()
        ledger = AccountingLedger(system.trace)
        charge = ledger.job(job.job_id)
        # ends at 580 (grant at 160): base 4 cores x 580s, expansion 4 x 420s
        assert charge.base_core_seconds == pytest.approx(4 * 580.0)
        assert charge.expansion_core_seconds == pytest.approx(4 * 420.0)
        assert charge.expansions == 1

    def test_release_stops_charging(self, system):
        job = Job(request=ResourceRequest(cores=8), walltime=4000.0, user="w")
        system.submit(
            job, EvolvingWorkApp(1000.0, release_at_fraction=0.5, release_cores=4)
        )
        system.run()
        ledger = AccountingLedger(system.trace)
        charge = ledger.job(job.job_id)
        # 8 cores for 500s, then 4 cores for the slow 1000s tail
        assert charge.base_core_seconds == pytest.approx(8 * 500 + 4 * 1000)
        assert charge.released_cores == 4

    def test_preempted_segment_charged(self, system):
        job = Job(request=ResourceRequest(cores=8), walltime=500.0, user="p")
        system.submit(job, FixedRuntimeApp(400.0))
        system.run(until=100.0)
        system.server.preempt_job(job)
        system.run()
        ledger = AccountingLedger(system.trace)
        charge = ledger.job(job.job_id)
        # 100s before preemption + 400s full restart
        assert charge.base_core_seconds == pytest.approx(8 * 500.0)


class TestInvoices:
    def test_per_user_rollup(self, system):
        for user, cores in (("a", 8), ("a", 4), ("b", 16)):
            system.submit(
                Job(request=ResourceRequest(cores=cores), walltime=100.0, user=user),
                FixedRuntimeApp(100.0),
            )
        system.run()
        invoices = AccountingLedger(system.trace).invoices()
        assert invoices["a"].jobs == 2
        assert invoices["a"].core_seconds == pytest.approx(1200.0)
        assert invoices["b"].core_seconds == pytest.approx(1600.0)

    def test_total_matches_busy_integral(self, paper_system):
        from repro.metrics.stats import busy_core_seconds

        make_esp_workload(120, dynamic=True, seed=2014).submit_to(paper_system)
        paper_system.run(max_events=2_000_000)
        ledger = AccountingLedger(paper_system.trace)
        busy = busy_core_seconds(paper_system.trace, 0.0, 1e12)
        assert ledger.total_core_seconds == pytest.approx(busy, rel=1e-9)

    def test_esp_expansions_all_charged_to_user06(self, paper_system):
        make_esp_workload(120, dynamic=True, seed=2014).submit_to(paper_system)
        paper_system.run(max_events=2_000_000)
        invoices = AccountingLedger(paper_system.trace).invoices()
        for user, invoice in invoices.items():
            if user == "user06":
                assert invoice.expansions == 43
                assert invoice.expansion_core_seconds > 0
            else:
                assert invoice.expansions == 0

    def test_render(self, system):
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=10.0, user="renderme"),
            FixedRuntimeApp(10.0),
        )
        system.run()
        text = AccountingLedger(system.trace).render()
        assert "renderme" in text
        assert "Core-hours" in text
