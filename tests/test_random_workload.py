"""Unit tests for the random workload generator."""

import pytest

from repro.workloads.random_workload import make_random_workload


class TestMakeRandomWorkload:
    def test_job_count(self):
        assert make_random_workload(40, 64).total_jobs == 40

    def test_deterministic_per_seed(self):
        a = make_random_workload(30, 64, seed=3)
        b = make_random_workload(30, 64, seed=3)
        assert [(s.submit_time, s.request.cores, s.user) for s in a] == [
            (s.submit_time, s.request.cores, s.user) for s in b
        ]

    def test_seed_changes_workload(self):
        a = make_random_workload(30, 64, seed=1)
        b = make_random_workload(30, 64, seed=2)
        assert [s.submit_time for s in a] != [s.submit_time for s in b]

    def test_evolving_share_extremes(self):
        none = make_random_workload(30, 64, evolving_share=0.0, seed=1)
        assert none.evolving_jobs == 0
        all_ = make_random_workload(30, 64, evolving_share=1.0, seed=1)
        assert all_.evolving_jobs == 30

    def test_sizes_within_bounds(self):
        wl = make_random_workload(50, 64, size_range=(2, 16), seed=4)
        assert all(2 <= s.request.cores <= 16 for s in wl)

    def test_walltime_covers_runtime(self):
        wl = make_random_workload(50, 64, walltime_factor=1.5, seed=4)
        # walltime factor applies to the hidden runtime; waiting jobs must
        # never be killed before their payload ends
        assert all(s.walltime > 0 for s in wl)

    def test_arrivals_monotone(self):
        wl = make_random_workload(50, 64, seed=4)
        times = [s.submit_time for s in wl]
        assert times == sorted(times)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_random_workload(0, 64)
        with pytest.raises(ValueError):
            make_random_workload(10, 64, evolving_share=1.5)
        with pytest.raises(ValueError):
            make_random_workload(10, 64, size_range=(0, 8))
        with pytest.raises(ValueError):
            make_random_workload(10, 64, size_range=(1, 128))

    def test_users_spread(self):
        wl = make_random_workload(60, 64, num_users=4, seed=9)
        users = {s.user for s in wl}
        assert len(users) > 1
        assert all(u.startswith("ruser") for u in users)


class TestMakeDiurnalWorkload:
    def test_job_count(self):
        from repro.workloads.random_workload import make_diurnal_workload

        wl = make_diurnal_workload(3, 64, jobs_per_day=100, seed=2)
        assert wl.total_jobs == 300

    def test_day_concentration(self):
        from repro.workloads.random_workload import make_diurnal_workload

        wl = make_diurnal_workload(4, 64, jobs_per_day=200, day_fraction=0.8, seed=2)
        in_working_hours = sum(
            1
            for s in wl
            if 8 * 3600 <= s.submit_time % 86400 < 20 * 3600
        )
        assert in_working_hours / wl.total_jobs == pytest.approx(0.8, abs=0.02)

    def test_arrivals_span_all_days(self):
        from repro.workloads.random_workload import make_diurnal_workload

        wl = make_diurnal_workload(3, 64, seed=2)
        days = {int(s.submit_time // 86400) for s in wl}
        assert days == {0, 1, 2}

    def test_deterministic(self):
        from repro.workloads.random_workload import make_diurnal_workload

        a = make_diurnal_workload(2, 64, seed=9)
        b = make_diurnal_workload(2, 64, seed=9)
        assert [s.submit_time for s in a] == [s.submit_time for s in b]

    def test_validation(self):
        from repro.workloads.random_workload import make_diurnal_workload

        with pytest.raises(ValueError):
            make_diurnal_workload(0, 64)
        with pytest.raises(ValueError):
            make_diurnal_workload(1, 64, day_fraction=2.0)

    def test_runs_through_system(self):
        from repro.maui.config import MauiConfig
        from repro.metrics.validate import validate_trace
        from repro.system import BatchSystem
        from repro.workloads.random_workload import make_diurnal_workload

        system = BatchSystem(8, 8, MauiConfig(reservation_depth=3))
        make_diurnal_workload(1, 64, jobs_per_day=60, seed=5).submit_to(system)
        system.run(max_events=200_000)
        assert all(j.is_finished for j in system.server.jobs.values())
        assert validate_trace(system.trace, system.cluster) == []
