"""Phase profiler: clock shim, path accounting, scheduler integration.

The profiler's contract has three parts tested here: (1) exact arithmetic —
with a frozen manual clock, totals/self times/paths are deterministic
integers; (2) zero behavioural footprint — an instrumented run produces a
bit-identical schedule to an uninstrumented one, because the profiler only
ever reads the wall clock; (3) coverage — the instrumented phases tile a
scheduler iteration (direct children account for ≥ 90 % of its wall time,
the PR's acceptance criterion).
"""

import io

import pytest

from repro.maui.config import MauiConfig
from repro.obs import Telemetry
from repro.obs.clock import ManualClock, monotonic_s, perf_ns, reset_clock, set_clock
from repro.obs.perf import (
    PhaseProfiler,
    aggregate_phase_records,
    read_phases_jsonl,
    stats_tree,
)
from repro.obs.registry import MetricsRegistry
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload


@pytest.fixture
def clk():
    clock = ManualClock()
    set_clock(clock)
    yield clock
    reset_clock()


class TestClockShim:
    def test_manual_clock_freezes_both_views(self, clk):
        clk.now_ns = 2_500_000_000
        assert perf_ns() == 2_500_000_000
        assert monotonic_s() == pytest.approx(2.5)
        clk.advance(500_000_000)
        assert monotonic_s() == pytest.approx(3.0)

    def test_negative_advance_rejected(self, clk):
        with pytest.raises(ValueError):
            clk.advance(-1)

    def test_reset_restores_real_clock(self):
        clock = ManualClock()
        set_clock(clock)
        reset_clock()
        a, b = perf_ns(), perf_ns()
        assert b >= a > 0


class TestPhaseAccounting:
    def test_nested_totals_and_self_times_exact(self, clk):
        prof = PhaseProfiler()
        prof.begin("a")
        clk.advance(1_000)
        prof.begin("b")
        clk.advance(500)
        prof.end()
        clk.advance(200)
        prof.end()
        stats = prof.stats()
        assert set(stats) == {("a",), ("a", "b")}
        assert stats[("a",)].total_ns == 1_700
        assert stats[("a",)].self_ns == 1_200
        assert stats[("a", "b")].total_ns == 500
        assert stats[("a", "b")].self_ns == 500
        assert prof.depth == 0
        assert prof.child_coverage(("a",)) == pytest.approx(500 / 1_700)

    def test_same_name_under_two_parents_kept_separate(self, clk):
        prof = PhaseProfiler()
        for parent, dur in (("x", 100), ("y", 300)):
            prof.begin(parent)
            prof.begin("build")
            clk.advance(dur)
            prof.end()
            prof.end()
        stats = prof.stats()
        assert stats[("x", "build")].total_ns == 100
        assert stats[("y", "build")].total_ns == 300

    def test_tree_shape_and_rounding(self, clk):
        prof = PhaseProfiler()
        prof.begin("root")
        clk.advance(2_000_000)
        prof.begin("leaf")
        clk.advance(1_000_000)
        prof.end()
        prof.end()
        tree = prof.tree()
        assert tree["root"]["total_ms"] == pytest.approx(3.0)
        assert tree["root"]["self_ms"] == pytest.approx(2.0)
        assert tree["root"]["children"]["leaf"]["total_ms"] == pytest.approx(1.0)
        assert tree["root"]["children"]["leaf"]["children"] == {}

    def test_max_and_mean_in_summary(self, clk):
        prof = PhaseProfiler()
        for dur in (1_000, 3_000):
            prof.begin("p")
            clk.advance(dur)
            prof.end()
        row = prof.summary()["p"]
        assert row["count"] == 2
        assert row["mean_us"] == pytest.approx(2.0)
        assert row["max_us"] == pytest.approx(3.0)

    def test_record_ring_drops_oldest(self, clk):
        prof = PhaseProfiler(trace_maxlen=2)
        for i in range(3):
            prof.begin(f"p{i}")
            clk.advance(10)
            prof.end()
        records = list(prof.iter_records())
        assert [r["phase"] for r in records] == ["p1", "p2"]
        assert prof.records_dropped == 1
        # aggregates still cover all three
        assert prof.total_phase_count() == 3

    def test_registry_histogram_per_path(self, clk):
        registry = MetricsRegistry()
        prof = PhaseProfiler(registry=registry)
        prof.begin("a")
        prof.begin("b")
        clk.advance(2_000_000)  # 2 ms
        prof.end()
        prof.end()
        hist = registry.histogram(
            "repro_phase_seconds",
            "Wall-clock seconds spent per profiled phase path",
            labels={"phase": "a/b"},
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.002)


class TestPhaseTrace:
    def test_jsonl_round_trip_rebuilds_aggregates(self, clk):
        prof = PhaseProfiler()
        prof.begin("outer", sim_time=5.0)
        clk.advance(1_000)
        prof.begin("inner")
        clk.advance(400)
        prof.end()
        prof.end()
        buf = io.StringIO()
        assert prof.export_phases_jsonl(buf) == 2
        buf.seek(0)
        records = read_phases_jsonl(buf)
        assert all(r["t"] == 5.0 for r in records)
        stats = aggregate_phase_records(records)
        assert stats[("outer",)].total_ns == 1_400
        # self reconstructed by subtracting direct children
        assert stats[("outer",)].self_ns == 1_000
        assert stats[("outer", "inner")].total_ns == 400

    def test_stats_tree_matches_live_tree(self, clk):
        prof = PhaseProfiler()
        prof.begin("a")
        clk.advance(1_000_000)
        prof.begin("b")
        clk.advance(1_000_000)
        prof.end()
        prof.end()
        assert stats_tree(prof.stats()) == prof.tree()

    def test_read_rejects_foreign_records(self):
        with pytest.raises(ValueError):
            read_phases_jsonl(io.StringIO('{"kind": "meta"}\n'))


def _run_workload(profiling: bool):
    telemetry = Telemetry(profiling=profiling) if profiling else None
    system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
    make_random_workload(
        60, system.cluster.total_cores, seed=7, mean_interarrival=30.0
    ).submit_to(system)
    system.run(max_events=1_000_000)
    return system, telemetry


class TestSchedulerIntegration:
    @pytest.fixture(scope="class")
    def profiled(self):
        return _run_workload(profiling=True)

    def test_stack_balanced_after_run(self, profiled):
        _, telemetry = profiled
        assert telemetry.profiler.depth == 0

    def test_every_path_roots_at_engine_dispatch(self, profiled):
        _, telemetry = profiled
        paths = telemetry.profiler.stats()
        assert paths
        assert all(path[0] == "engine_dispatch" for path in paths)

    def test_scheduler_phases_recorded(self, profiled):
        _, telemetry = profiled
        tree = telemetry.profiler.tree()
        sched = tree["engine_dispatch"]["children"]["sched_iteration"]
        assert {"static_pass", "prioritize", "fairshare_update"} <= set(
            sched["children"]
        )

    def test_children_cover_iteration_within_ten_percent(self, profiled):
        # the PR acceptance criterion: instrumented phases must tile the
        # iteration — untimed gaps may cost at most 10 % of its wall time
        _, telemetry = profiled
        coverage = telemetry.profiler.child_coverage(
            ("engine_dispatch", "sched_iteration")
        )
        assert coverage >= 0.9

    def test_phase_histograms_in_shared_registry(self, profiled):
        _, telemetry = profiled
        names = {
            (inst.name, dict(inst.labels).get("phase"))
            for inst in telemetry.registry.collect()
            if inst.name == "repro_phase_seconds"
        }
        assert ("repro_phase_seconds", "engine_dispatch") in names

    def test_profiling_is_bit_identical_to_disabled(self, profiled):
        profiled_system, _ = profiled
        plain_system, _ = _run_workload(profiling=False)
        # job IDs come from a process-global counter, so compare the
        # schedule itself: exact submit/start/end times and final states
        schedule = lambda s: sorted(  # noqa: E731
            (j.submit_time, j.start_time, j.end_time, j.state.value)
            for j in s.server.jobs.values()
        )
        assert schedule(profiled_system) == schedule(plain_system)
        assert (
            profiled_system.trace.total_recorded == plain_system.trace.total_recorded
        )
