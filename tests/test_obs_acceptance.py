"""Acceptance: Table II telemetry artifacts recompute the collector's values.

An instrumented Table II run dumps, per configuration, a JSONL event trace
and a Prometheus metrics snapshot.  This test closes the loop: parsing those
files back must reproduce the exact utilization and satisfied-dynamic-job
counts that :class:`repro.metrics.collector.WorkloadMetrics` reports — the
streamed telemetry and the post-hoc metrics are two views of one truth.
"""

import pytest

from repro.experiments.table2 import run_table2_instrumented
from repro.metrics.stats import busy_core_seconds
from repro.obs import read_jsonl
from repro.obs.exporters import parse_prometheus_text

TOTAL_CORES = 15 * 8


@pytest.fixture(scope="module")
def instrumented(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("telemetry")
    results = run_table2_instrumented(seed=2014, out_dir=out_dir)
    return out_dir, results


def test_all_four_configurations_dump_artifacts(instrumented):
    out_dir, results = instrumented
    assert len(results) == 4
    for result in results:
        assert (out_dir / f"{result.name}.trace.jsonl").exists()
        assert (out_dir / f"{result.name}.metrics.prom").exists()


def test_utilization_recomputes_from_jsonl(instrumented):
    out_dir, results = instrumented
    for result in results:
        restored = read_jsonl(str(out_dir / f"{result.name}.trace.jsonl"))
        m = result.metrics
        busy = busy_core_seconds(restored, m.first_submit, m.last_end)
        recomputed = busy / (TOTAL_CORES * m.workload_time)
        assert recomputed == pytest.approx(m.utilization, rel=1e-12), result.name


def test_satisfied_jobs_recompute_from_prometheus(instrumented):
    out_dir, results = instrumented
    for result in results:
        prom = parse_prometheus_text(
            (out_dir / f"{result.name}.metrics.prom").read_text()
        )
        assert prom["repro_dyn_satisfied_jobs_total"] == (
            result.metrics.satisfied_dyn_jobs
        ), result.name


def test_prometheus_counters_match_scheduler_and_server_state(instrumented):
    out_dir, results = instrumented
    for result in results:
        prom = parse_prometheus_text(
            (out_dir / f"{result.name}.metrics.prom").read_text()
        )
        stats = result.scheduler_stats
        assert prom["repro_sched_iterations_total"] == stats["iterations"]
        assert prom["repro_dyn_grants_total"] == stats["dyn_granted"]
        assert prom["repro_dyn_rejects_total"] == stats["dyn_rejected"]
        assert prom["repro_jobs_submitted_total"] == len(result.metrics.records)
        assert prom["repro_jobs_completed_total"] == result.metrics.completed_jobs
        # every run ends idle: live gauges must agree
        assert prom["repro_busy_cores"] == 0
        assert prom["repro_queue_depth"] == 0
        assert prom["repro_running_jobs"] == 0


def test_jsonl_trace_equals_in_memory_trace(instrumented):
    out_dir, results = instrumented
    for result in results:
        restored = read_jsonl(str(out_dir / f"{result.name}.trace.jsonl"))
        assert list(restored) == list(result.trace), result.name
