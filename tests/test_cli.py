"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_artifact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.artifact == "table1"
        assert args.seed == 2014

    def test_seed_option(self):
        args = build_parser().parse_args(["table2", "--seed", "7"])
        assert args.seed == 7

    def test_cores_option(self):
        args = build_parser().parse_args(["table1", "--cores", "64"])
        assert args.cores == 64

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "user06" in out

    def test_table1_other_machine(self, capsys):
        main(["table1", "--cores", "64"])
        assert "64 cores" in capsys.readouterr().out

    def test_table2_prints(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Dyn-HP" in out and "Static" in out

    def test_fig7_prints(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "FlatPlate" in out and "Cylinder" in out

    def test_fig9_prints(self, capsys):
        assert main(["fig9"]) == 0
        assert "type L" in capsys.readouterr().out

    def test_export_prints_json(self, capsys):
        import json

        assert main(["export"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["seed"] == 2014
        assert len(data["table2"]) == 4

    def test_baselines_prints(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "Guaranteeing" in out and "SLURM-style" in out

    def test_gantt_prints(self, capsys):
        assert main(["gantt"]) == 0
        out = capsys.readouterr().out
        assert "node000" in out


class TestJobsFlag:
    def test_default_is_serial(self):
        assert build_parser().parse_args(["sweep"]).jobs is None

    def test_explicit_worker_count(self):
        assert build_parser().parse_args(["sweep", "-j", "4"]).jobs == 4
        assert build_parser().parse_args(["table2", "--jobs", "2"]).jobs == 2

    def test_zero_means_all_cpus(self):
        import os

        from repro.exec import resolve_workers

        args = build_parser().parse_args(["campaign", "-j", "0"])
        assert args.jobs == 0
        assert resolve_workers(args.jobs) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "-j", "-1"])

    def test_non_integer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "-j", "two"])

    def test_campaign_command_listed(self):
        args = build_parser().parse_args(["campaign", "--num-jobs", "50"])
        assert args.artifact == "campaign"
        assert args.num_jobs == 50

    def test_campaign_num_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--num-jobs", "0"])

    def test_campaign_prints(self, capsys):
        assert main(["campaign", "--num-jobs", "20"]) == 0
        out = capsys.readouterr().out
        assert "Random mixed-workload campaign" in out
        assert "Satisfied" in out


class TestInputHardening:
    """File-reading subcommands fail cleanly: exit 2, one-line error."""

    def check(self, capsys, argv, path):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert str(path) in lines[0]

    def test_trace_file_missing(self, capsys, tmp_path):
        path = tmp_path / "nope.trace.jsonl"
        self.check(capsys, ["trace", "--trace-file", str(path)], path)

    def test_ledger_file_corrupt(self, capsys, tmp_path):
        path = tmp_path / "bad.ledger.jsonl"
        path.write_text("{not json\n")
        self.check(capsys, ["ledger", "--ledger-file", str(path)], path)

    def test_why_ledger_file_missing(self, capsys, tmp_path):
        path = tmp_path / "gone.ledger.jsonl"
        self.check(capsys, ["why", "--ledger-file", str(path)], path)

    def test_perf_report_phases_corrupt(self, capsys, tmp_path):
        path = tmp_path / "bad.phases.jsonl"
        path.write_text('{"phase": "unterminated\n')
        self.check(capsys, ["perf-report", "--phases", str(path)], path)

    def test_perf_report_windows_missing(self, capsys, tmp_path):
        path = tmp_path / "none.windows.jsonl"
        self.check(capsys, ["perf-report", "--windows", str(path)], path)

    def test_bench_trend_corrupt_snapshot(self, capsys, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text("not json at all")
        current = tmp_path / "cur.json"
        current.write_text("{}")
        self.check(
            capsys,
            ["bench-trend", "--baseline", str(baseline), "--current", str(current)],
            baseline,
        )

    def test_serve_replay_from_missing(self, capsys, tmp_path):
        path = tmp_path / "never.trace.jsonl"
        self.check(capsys, ["serve", "--replay-from", str(path)], path)


class TestServe:
    def test_serve_runs_clean(self, capsys):
        assert main(["serve", "--seed", "2014"]) == 0
        out = capsys.readouterr().out
        assert "scheduler service on backend 'sim'" in out
        assert "service shutdown: clean" in out

    def test_serve_throttled(self, capsys):
        assert main(["serve", "--max-open", "2"]) == 0
        assert "throttled" in capsys.readouterr().out

    def test_serve_replay_roundtrip(self, capsys, tmp_path):
        import json

        from repro.experiments.table2 import _run_instrumented_config

        _run_instrumented_config("Static", 2014, tmp_path)
        trace = tmp_path / "Static.trace.jsonl"
        assert trace.exists()
        assert main(["serve", "--replay-from", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "backend 'replay'" in out
        assert "service shutdown: clean" in out
