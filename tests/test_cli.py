"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_artifact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.artifact == "table1"
        assert args.seed == 2014

    def test_seed_option(self):
        args = build_parser().parse_args(["table2", "--seed", "7"])
        assert args.seed == 7

    def test_cores_option(self):
        args = build_parser().parse_args(["table1", "--cores", "64"])
        assert args.cores == 64

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "user06" in out

    def test_table1_other_machine(self, capsys):
        main(["table1", "--cores", "64"])
        assert "64 cores" in capsys.readouterr().out

    def test_table2_prints(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Dyn-HP" in out and "Static" in out

    def test_fig7_prints(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "FlatPlate" in out and "Cylinder" in out

    def test_fig9_prints(self, capsys):
        assert main(["fig9"]) == 0
        assert "type L" in capsys.readouterr().out

    def test_export_prints_json(self, capsys):
        import json

        assert main(["export"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["seed"] == 2014
        assert len(data["table2"]) == 4

    def test_baselines_prints(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "Guaranteeing" in out and "SLURM-style" in out

    def test_gantt_prints(self, capsys):
        assert main(["gantt"]) == 0
        out = capsys.readouterr().out
        assert "node000" in out


class TestJobsFlag:
    def test_default_is_serial(self):
        assert build_parser().parse_args(["sweep"]).jobs is None

    def test_explicit_worker_count(self):
        assert build_parser().parse_args(["sweep", "-j", "4"]).jobs == 4
        assert build_parser().parse_args(["table2", "--jobs", "2"]).jobs == 2

    def test_zero_means_all_cpus(self):
        import os

        from repro.exec import resolve_workers

        args = build_parser().parse_args(["campaign", "-j", "0"])
        assert args.jobs == 0
        assert resolve_workers(args.jobs) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "-j", "-1"])

    def test_non_integer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "-j", "two"])

    def test_campaign_command_listed(self):
        args = build_parser().parse_args(["campaign", "--num-jobs", "50"])
        assert args.artifact == "campaign"
        assert args.num_jobs == 50

    def test_campaign_num_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--num-jobs", "0"])

    def test_campaign_prints(self, capsys):
        assert main(["campaign", "--num-jobs", "20"]) == 0
        out = capsys.readouterr().out
        assert "Random mixed-workload campaign" in out
        assert "Satisfied" in out
