"""Vectorized-vs-scalar ranking equivalence (the bit-identity oracle).

The vectorized pass in :mod:`repro.maui.priority` promises *exactly* the
scalar results: every score equal to full float precision, every ordering
identical.  These tests drive randomized weight/job/fairshare combinations
through both implementations and compare without tolerance.
"""

import copy
import random

import pytest

from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import PriorityWeightsConfig
from repro.maui.priority import FairshareTracker, JobColumns, Prioritizer

TRIALS = 60


def make_job(rng, submit=None, **kw):
    defaults = dict(
        request=ResourceRequest(cores=rng.randrange(1, 64)),
        walltime=rng.uniform(1.0, 5000.0),
        user=f"u{rng.randrange(6)}",
        top_priority=rng.random() < 0.2,
    )
    defaults.update(kw)
    job = Job(**defaults)
    job.submit_time = (
        rng.choice([0.0, 10.0, rng.uniform(0.0, 1000.0)]) if submit is None else submit
    )
    return job


def random_prioritizer(rng):
    weights = PriorityWeightsConfig(
        queue_time=rng.choice([0.0, 1.0, rng.uniform(0.0, 10.0)]),
        expansion_factor=rng.choice([0.0, rng.uniform(0.0, 5.0)]),
        fairshare=rng.choice([0.0, rng.uniform(0.0, 100.0)]),
        service=rng.choice([0.0, rng.uniform(0.0, 3.0)]),
        credential=rng.choice([0.0, rng.uniform(0.0, 50.0)]),
        user_priorities={f"u{i}": rng.uniform(-5.0, 5.0) for i in range(3)},
    )
    fairshare = FairshareTracker(3600.0, 0.8)
    for u in range(6):
        if rng.random() < 0.7:
            fairshare.add_usage(f"u{u}", rng.uniform(0.0, 1e6))
    return Prioritizer(weights, fairshare)


class TestVectorizedEquivalence:
    def test_scores_bit_identical_to_scalar(self):
        rng = random.Random(7)
        for _ in range(TRIALS):
            prio = random_prioritizer(rng)
            jobs = [make_job(rng) for _ in range(rng.randrange(1, 60))]
            now = rng.uniform(0.0, 2000.0)
            scores = prio.scores(JobColumns(jobs), now)
            for job, vec_score in zip(jobs, scores.tolist()):
                assert vec_score == prio.priority(job, now)

    def test_order_identical_to_scalar(self):
        rng = random.Random(11)
        for _ in range(TRIALS):
            prio = random_prioritizer(rng)
            prio.vectorized = True  # force the numpy pass past the auto gate
            jobs = [make_job(rng) for _ in range(rng.randrange(8, 60))]
            now = rng.uniform(0.0, 2000.0)
            assert prio.order(jobs, now) == prio.order_scalar(jobs, now)

    def test_many_exact_ties_resolve_identically(self):
        # equal submit times and equal priorities: the (submit, seq)
        # tie-break chain carries the whole ordering
        rng = random.Random(13)
        prio = random_prioritizer(rng)
        prio.vectorized = True
        jobs = [make_job(rng, submit=50.0, top_priority=False) for _ in range(40)]
        shuffled = list(jobs)
        rng.shuffle(shuffled)
        assert prio.order(shuffled, 100.0) == prio.order_scalar(shuffled, 100.0)

    def test_auto_gate_policy(self, monkeypatch):
        # auto mode vectorizes only deep multi-factor queues: queue-time-
        # only scoring is two arithmetic ops per job and sorted() wins at
        # any depth, so those configs must stay on the scalar path
        rng = random.Random(23)
        fairshare = FairshareTracker(3600.0, 0.8)
        scalar_calls = []

        def spy(self, jobs, now, _orig=Prioritizer.order_scalar):
            scalar_calls.append(len(jobs))
            return _orig(self, jobs, now)

        monkeypatch.setattr(Prioritizer, "order_scalar", spy)
        multi = Prioritizer(
            PriorityWeightsConfig(queue_time=1.0, fairshare=10.0), fairshare
        )
        single = Prioritizer(PriorityWeightsConfig(queue_time=1.0), fairshare)
        deep = [make_job(rng) for _ in range(40)]
        shallow = deep[:4]
        multi.order(deep, 100.0)
        assert scalar_calls == []  # deep + multi-factor: numpy pass
        multi.order(shallow, 100.0)
        single.order(deep, 100.0)
        assert scalar_calls == [4, 40]  # shallow or single-factor: scalar

    def test_unsubmitted_job_rejected_in_columns(self):
        job = Job(request=ResourceRequest(cores=1), walltime=10.0)
        with pytest.raises(ValueError):
            JobColumns([job])

    def test_scalar_toggle_forces_reference_path(self):
        rng = random.Random(17)
        prio = random_prioritizer(rng)
        prio.vectorized = False
        jobs = [make_job(rng) for _ in range(20)]
        assert prio.order(jobs, 500.0) == prio.order_scalar(jobs, 500.0)


class TestVectorizedRoll:
    def scalar_roll(self, tracker, now):
        """The historic per-user loop, kept here as the oracle."""
        while now >= tracker.window_start + tracker.interval:
            tracker.window_start += tracker.interval
            for user in list(tracker._usage):
                tracker._usage[user] *= tracker.decay
                if tracker._usage[user] < 1e-9:
                    del tracker._usage[user]

    def test_roll_bit_identical_to_scalar(self):
        rng = random.Random(19)
        for _ in range(200):
            a = FairshareTracker(100.0, rng.choice([0.0, 0.5, 0.9, 0.99, 1.0]))
            for u in range(8):
                if rng.random() < 0.8:
                    a.add_usage(
                        f"u{u}", rng.choice([0.0, 5e-10, 1e-9, rng.uniform(0.0, 1e5)])
                    )
            b = copy.deepcopy(a)
            now = rng.uniform(0.0, 3000.0)
            a.roll(now)
            self.scalar_roll(b, now)
            assert a.window_start == b.window_start
            assert a._usage == b._usage
            # dict iteration order feeds the sequential total_usage sum, so
            # insertion order must survive the vectorized roll too
            assert list(a._usage) == list(b._usage)
            assert a.total_usage == b.total_usage

    def test_roll_without_users_still_advances_window(self):
        fs = FairshareTracker(100.0, 0.5)
        fs.roll(250.0)
        assert fs.window_start == 200.0
