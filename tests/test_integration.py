"""End-to-end integration tests with system-wide invariants.

Every scenario runs through the full stack and then asserts global
conservation properties: no core leaked, every mom empty, every job
accounted for.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import JobState
from repro.maui.config import DFSConfig, DFSPolicy, MauiConfig, PrincipalLimits
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload
from repro.workloads.random_workload import make_random_workload


def assert_clean_shutdown(system: BatchSystem) -> None:
    """Global invariants after a fully-drained run."""
    assert system.cluster.used_cores == 0, "cores leaked"
    assert len(system.server.queue) == 0, "jobs stuck in queue"
    assert len(system.server.dyn_queue) == 0, "dynamic requests stuck"
    for mom in system.server.moms.moms.values():
        assert not mom.jobs, f"mom {mom.node_index} still hosts jobs"
    for job in system.server.jobs.values():
        assert job.is_finished, f"{job.job_id} not finished: {job.state}"
        assert job.end_time is not None


class TestSmallMixes:
    def test_rigid_only_drains(self, system):
        from repro.jobs.job import Job

        for i in range(12):
            system.submit(
                Job(request=ResourceRequest(cores=4 + (i % 3) * 4), walltime=100.0, user=f"u{i%4}"),
                FixedRuntimeApp(100.0),
            )
        system.run(max_events=50_000)
        assert_clean_shutdown(system)
        assert all(j.state is JobState.COMPLETED for j in system.server.jobs.values())

    def test_mixed_evolving_drains(self, system):
        from repro.jobs.evolution import EvolutionProfile
        from repro.jobs.job import Job, JobFlexibility

        for i in range(6):
            system.submit(
                Job(request=ResourceRequest(cores=8), walltime=300.0, user=f"r{i}"),
                FixedRuntimeApp(300.0),
            )
        for i in range(4):
            system.submit(
                Job(
                    request=ResourceRequest(cores=4),
                    walltime=500.0,
                    user="evo",
                    flexibility=JobFlexibility.EVOLVING,
                    evolution=EvolutionProfile.esp_default(),
                ),
                EvolvingWorkApp(500.0),
            )
        system.run(max_events=50_000)
        assert_clean_shutdown(system)

    def test_random_workload_drains(self):
        system = BatchSystem(8, 8, MauiConfig(reservation_depth=3, reservation_delay_depth=3))
        wl = make_random_workload(60, 64, seed=11)
        wl.submit_to(system)
        system.run(max_events=200_000)
        assert_clean_shutdown(system)

    def test_random_workload_with_fairness_drains(self):
        config = MauiConfig(
            dfs=DFSConfig(
                policy=DFSPolicy.SINGLE_AND_TARGET_DELAY,
                default_user=PrincipalLimits(target_delay_time=300.0, single_delay_time=120.0),
            )
        )
        system = BatchSystem(8, 8, config)
        make_random_workload(50, 64, seed=3, evolving_share=0.5).submit_to(system)
        system.run(max_events=200_000)
        assert_clean_shutdown(system)

    def test_random_workload_with_preemption_drains(self):
        system = BatchSystem(8, 8, MauiConfig(preemption_for_dynamic=True))
        make_random_workload(50, 64, seed=9, evolving_share=0.4).submit_to(system)
        system.run(max_events=200_000)
        assert_clean_shutdown(system)


class TestEspEndToEnd:
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_esp_run_completes_all_jobs(self, paper_system, dynamic):
        wl = make_esp_workload(120, dynamic=dynamic, seed=2014)
        wl.submit_to(paper_system)
        paper_system.run(max_events=2_000_000)
        assert_clean_shutdown(paper_system)
        m = paper_system.metrics()
        assert m.completed_jobs == 230
        assert 0.5 < m.utilization <= 1.0

    def test_dynamic_beats_static(self):
        results = {}
        for dynamic in (False, True):
            system = BatchSystem(
                15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
            )
            make_esp_workload(120, dynamic=dynamic, seed=2014).submit_to(system)
            system.run(max_events=2_000_000)
            results[dynamic] = system.metrics()
        # the headline claim: dynamic allocation improves the system metrics
        assert results[True].workload_time < results[False].workload_time
        assert results[True].utilization > results[False].utilization
        assert results[True].satisfied_dyn_jobs > 0

    def test_z_job_lockdown_in_esp(self, paper_system):
        wl = make_esp_workload(120, dynamic=True, seed=2014)
        jobs = wl.submit_to(paper_system)
        paper_system.run(max_events=2_000_000)
        z_jobs = [j for j in jobs if j.esp_type == "Z"]
        assert len(z_jobs) == 2
        for z in z_jobs:
            assert z.state is JobState.COMPLETED
            assert z.allocation.total_cores == 120
        # the two Z jobs must not overlap (each needs the whole machine)
        first, second = sorted(z_jobs, key=lambda j: j.start_time)
        assert second.start_time >= first.end_time

    def test_determinism_same_seed_same_results(self):
        outcomes = []
        for _ in range(2):
            system = BatchSystem(
                15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
            )
            make_esp_workload(120, dynamic=True, seed=99).submit_to(system)
            system.run(max_events=2_000_000)
            m = system.metrics()
            outcomes.append(
                (
                    m.workload_time,
                    m.satisfied_dyn_jobs,
                    tuple(r.wait_time for r in m.records),
                )
            )
        assert outcomes[0] == outcomes[1]


class TestFaultTolerance:
    def test_node_failure_requeues_via_abort_and_drains(self, system):
        from repro.jobs.job import Job

        job = Job(request=ResourceRequest(cores=8), walltime=500.0, user="a")
        system.submit(job, FixedRuntimeApp(500.0))
        system.run(until=100.0)
        # operator aborts the job on a failing node and drains the node
        failed_node = job.allocation.node_indices[0]
        system.server.abort_job(job, "node failure")
        system.cluster.fail_node(failed_node)
        # a new job still runs on the remaining nodes
        job2 = Job(request=ResourceRequest(cores=16), walltime=100.0, user="b")
        system.submit(job2, FixedRuntimeApp(100.0))
        system.run()
        assert job2.state is JobState.COMPLETED
        assert failed_node not in job2.allocation


class TestLongHorizonSoak:
    def test_week_long_diurnal_soak(self):
        """7 simulated days, ~1400 jobs, every extension enabled at once.

        The combined-features soak: fairness policies, preemption, malleable
        stealing, throttling, an admin maintenance window and a node failure
        all in one run — everything must drain and the trace must validate.
        """
        from repro.maui.config import DFSConfig, DFSPolicy, PrincipalLimits
        from repro.maui.reservations import AdminReservation
        from repro.metrics.validate import validate_trace
        from repro.workloads.random_workload import make_diurnal_workload

        config = MauiConfig(
            reservation_depth=3,
            reservation_delay_depth=5,
            preemption_for_dynamic=True,
            malleable_steal_for_dynamic=True,
            max_running_jobs_per_user=20,
            dynamic_request_order="fairshare",
            dfs=DFSConfig(
                policy=DFSPolicy.SINGLE_AND_TARGET_DELAY,
                interval=6 * 3600.0,
                decay=0.4,
                default_user=PrincipalLimits(
                    target_delay_time=1200.0, single_delay_time=600.0
                ),
            ),
            admin_reservations=(
                AdminReservation(
                    cores_by_node={0: 8, 1: 8},
                    start=2.5 * 86400.0,
                    end=2.6 * 86400.0,
                    name="weekly maintenance",
                ),
            ),
        )
        system = BatchSystem(10, 8, config)
        make_diurnal_workload(
            7, 80, jobs_per_day=200, evolving_share=0.3, seed=13
        ).submit_to(system)
        # a node dies on day 4 and comes back six hours later
        system.engine.at(4.0 * 86400.0, system.server.handle_node_failure, 5)
        system.engine.at(4.25 * 86400.0, system.server.recover_node, 5)
        system.run(max_events=3_000_000)

        assert_clean_shutdown(system)
        assert validate_trace(system.trace, system.cluster) == []
        m = system.metrics()
        assert m.completed_jobs == 1400
        assert m.satisfied_dyn_jobs > 0
        assert system.scheduler.dfs.intervals_rolled >= 7 * 4 - 1
