"""Tests for the seed-sweep harness."""

import pytest

from repro.experiments.sweep import render_sweep, run_seed_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_seed_sweep(seeds=[5, 11])


class TestSeedSweep:
    def test_samples_per_config(self, sweep):
        assert set(sweep.samples) == {"Static", "Dyn-HP", "Dyn-500", "Dyn-600"}
        assert all(len(rows) == 2 for rows in sweep.samples.values())

    def test_stats(self, sweep):
        mean, std = sweep.stats("Static", "satisfied")
        assert mean == 0.0 and std == 0.0
        mean, _ = sweep.stats("Dyn-HP", "satisfied")
        assert mean > 0

    def test_ordering_fraction_bounds(self, sweep):
        frac = sweep.ordering_holds(
            "util_pct", "Dyn-HP", "Static", larger_is_better=True
        )
        assert 0.0 <= frac <= 1.0

    def test_render(self, sweep):
        text = render_sweep(sweep)
        assert "±" in text
        assert "ordering robustness" in text
