"""Fairness observatory: principals, Jain's index, sampling, exports.

Unit layer exercises the observatory against fake jobs and trackers;
the end-to-end layer proves the acceptance contract — an instrumented
run is bit-identical to a disabled one on ``(submit, start, end,
state)`` and the per-account rows reconcile with the scheduler's own
fairshare charges.
"""

import io
from types import SimpleNamespace

import pytest

from repro.maui.config import MauiConfig
from repro.obs import FairnessObservatory, Telemetry, jain_index, principal_of
from repro.obs.registry import MetricsRegistry
from repro.obs.windows import WindowedMetrics
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload


def _job(user, account="default"):
    return SimpleNamespace(user=user, account=account)


class _Tracker:
    """Stand-in for FairshareTracker: fixed decayed usage per user."""

    def __init__(self, usage):
        self._usage = usage

    def usage(self, user):
        return self._usage.get(user, 0.0)


class TestPrincipal:
    def test_account_wins_when_set(self):
        assert principal_of(_job("alice", "physics")) == "physics"

    def test_default_account_falls_back_to_user(self):
        assert principal_of(_job("alice")) == "alice"
        assert principal_of(_job("alice", "")) == "alice"


class TestJainIndex:
    def test_empty_and_all_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_equal_shares_are_perfectly_fair(self):
        assert jain_index([0.25] * 4) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


class TestObservatory:
    def test_accrue_groups_users_by_account(self):
        fair = FairnessObservatory()
        fair.accrue(_job("alice", "physics"), 100.0)
        fair.accrue(_job("bob", "physics"), 50.0)
        fair.accrue(_job("carol"), 25.0)
        assert fair.core_seconds == {"physics": 150.0, "carol": 25.0}
        assert fair.principals == ["carol", "physics"]
        assert fair.accruals == 3

    def test_targets_normalize_explicit_weights(self):
        fair = FairnessObservatory(share_targets={"physics": 3.0})
        fair.accrue(_job("alice", "physics"), 1.0)
        fair.accrue(_job("carol"), 1.0)
        assert fair.targets() == {"physics": 0.75, "carol": 0.25}

    def test_sample_is_interval_gated(self):
        fair = FairnessObservatory(sample_interval=100.0)
        fair.accrue(_job("a"), 1.0)
        tracker = _Tracker({"a": 5.0})
        assert fair.sample(0.0, tracker)
        assert not fair.sample(50.0, tracker)
        assert fair.sample(100.0, tracker)
        assert len(fair.samples) == 2

    def test_sample_before_any_accrual_is_noop(self):
        fair = FairnessObservatory()
        assert not fair.sample(0.0, _Tracker({}))
        fair.finalize(10.0)
        assert fair.samples == []

    def test_jain_and_error_from_tracker_shares(self):
        fair = FairnessObservatory()
        fair.accrue(_job("a"), 1.0)
        fair.accrue(_job("b"), 1.0)
        fair.sample(0.0, _Tracker({"a": 3.0, "b": 1.0}))
        latest = fair.latest
        assert latest["shares"] == {"a": 0.75, "b": 0.25}
        # x = (1.5, 0.5): J = (2)^2 / (2 * 2.5) = 0.8
        assert latest["jain"] == pytest.approx(0.8)
        assert latest["max_share_error"] == pytest.approx(0.25)

    def test_decimation_halves_series_and_doubles_stride(self):
        fair = FairnessObservatory(sample_interval=1.0, max_points=8)
        fair.accrue(_job("a"), 1.0)
        tracker = _Tracker({"a": 1.0})
        for t in range(8):
            fair.sample(float(t), tracker)
        assert fair.decimations == 1
        assert fair.sample_interval == 2.0
        assert len(fair.samples) == 4
        # every other point survives, oldest first
        assert [s["t"] for s in fair.samples] == [0.0, 2.0, 4.0, 6.0]

    def test_memory_stays_bounded_under_many_samples(self):
        fair = FairnessObservatory(sample_interval=1.0, max_points=16)
        fair.accrue(_job("a"), 1.0)
        tracker = _Tracker({"a": 1.0})
        t = 0.0
        for _ in range(10_000):
            fair.sample(t, tracker, force=True)
            t += 1.0
        assert len(fair.samples) < 16

    def test_finalize_forces_trailing_sample(self):
        fair = FairnessObservatory(sample_interval=1000.0)
        fair.accrue(_job("a"), 1.0)
        fair.sample(0.0, _Tracker({"a": 1.0}))
        fair.finalize(10.0)
        assert [s["t"] for s in fair.samples] == [0.0, 10.0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FairnessObservatory(sample_interval=0.0)
        with pytest.raises(ValueError):
            FairnessObservatory(max_points=1)
        fair = FairnessObservatory(share_targets={"a": 0.0})
        fair.accrue(_job("x", "a"), 1.0)
        with pytest.raises(ValueError):
            fair.targets()

    def test_registry_gauges_track_latest_sample(self):
        registry = MetricsRegistry()
        fair = FairnessObservatory(registry=registry)
        fair.accrue(_job("a"), 1.0)
        fair.accrue(_job("b"), 1.0)
        fair.sample(0.0, _Tracker({"a": 3.0, "b": 1.0}))
        values = {
            (i.name, dict(i.labels).get("account")): i.value
            for i in registry.collect()
        }
        assert values[("repro_fairness_jain_index", None)] == pytest.approx(0.8)
        assert values[("repro_fairness_samples_total", None)] == 1
        assert values[("repro_fairness_share", "a")] == pytest.approx(0.75)
        assert values[("repro_fairness_share_target", "b")] == pytest.approx(0.5)


class TestAccountRows:
    def _folded_windows(self):
        w = WindowedMetrics(10.0, group_by=principal_of)
        job = SimpleNamespace(
            job_id="job.1",
            user="alice",
            account="default",
            submit_time=0.0,
            start_time=5.0,
            end_time=15.0,
            state=SimpleNamespace(value="completed"),
            is_evolving=False,
            dyn_granted=0,
        )
        w.fold_job(job)
        return w

    def test_rows_merge_shares_and_group_stats(self):
        fair = FairnessObservatory()
        fair.accrue(_job("alice"), 40.0)
        fair.sample(0.0, _Tracker({"alice": 1.0}))
        fair.attach_windows(self._folded_windows())
        (row,) = fair.account_rows()
        assert row["account"] == "alice"
        assert row["core_seconds"] == 40.0
        assert row["share"] == 1.0
        assert row["target"] == 1.0
        assert row["share_error"] == 0.0
        assert row["jobs"] == 1
        assert row["mean_wait"] == pytest.approx(5.0)
        assert row["mean_stretch"] == pytest.approx(1.5)

    def test_export_is_deterministic(self):
        def build():
            fair = FairnessObservatory()
            fair.accrue(_job("b"), 10.0)
            fair.accrue(_job("a", "acct"), 20.0)
            fair.sample(0.0, _Tracker({"a": 2.0, "b": 1.0}))
            buf = io.StringIO()
            fair.export_jsonl(buf)
            return buf.getvalue()

        text = build()
        assert text == build()
        assert '"schema":"repro-fairness/1"' in text
        assert '"kind":"account"' in text
        assert '"kind":"sample"' in text


def _run_random(telemetry, *, num_jobs=80, seed=7):
    system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
    make_random_workload(
        num_jobs, system.cluster.total_cores, seed=seed, mean_interarrival=30.0
    ).submit_to(system)
    system.run(max_events=1_000_000)
    return system


def _outcome(system):
    return [
        (r.submit_time, r.start_time, r.end_time, r.state)
        for r in system.metrics().records
    ]


class TestEndToEnd:
    def test_observatory_does_not_perturb_schedule(self):
        baseline = _outcome(_run_random(None))
        instrumented = _run_random(
            Telemetry(fairness=True, windows=600.0, decision_ledger=True)
        )
        assert _outcome(instrumented) == baseline

    def test_shares_and_charges_reconcile(self):
        system = _run_random(Telemetry(fairness=True, windows=600.0))
        fair = system.telemetry.fairness
        assert fair.accruals > 0
        assert fair.samples, "sampling never fired"
        shares = fair.latest["shares"]
        assert sum(shares.values()) == pytest.approx(1.0)
        # exact charges never exceed what the machine actually ran
        total = sum(fair.core_seconds.values())
        assert 0 < total <= system.telemetry.windows.busy_core_seconds + 1e-6
        rows = fair.account_rows()
        assert [r["account"] for r in rows] == sorted(shares)
        assert all(r["jobs"] > 0 for r in rows)

    def test_charges_are_deterministic_per_seed(self):
        charges = []
        for _ in range(2):
            system = _run_random(Telemetry(fairness=True, windows=600.0))
            charges.append(dict(system.telemetry.fairness.core_seconds))
        assert charges[0] == charges[1]
