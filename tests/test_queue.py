"""Tests for JobQueue and DynRequest."""

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.jobs.job import Job, JobState
from repro.jobs.queue import DynRequest, JobQueue


def make_job(**kw):
    defaults = dict(request=ResourceRequest(cores=4), walltime=100.0)
    defaults.update(kw)
    return Job(**defaults)


class TestJobQueue:
    def test_push_and_iterate_in_order(self):
        queue = JobQueue()
        jobs = [make_job() for _ in range(3)]
        for job in jobs:
            queue.push(job)
        assert list(queue) == jobs
        assert len(queue) == 3

    def test_push_requires_queued_state(self):
        queue = JobQueue()
        job = make_job()
        job.state = JobState.RUNNING
        with pytest.raises(ValueError):
            queue.push(job)

    def test_double_push_rejected(self):
        queue = JobQueue()
        job = make_job()
        queue.push(job)
        with pytest.raises(ValueError):
            queue.push(job)

    def test_remove(self):
        queue = JobQueue()
        job = make_job()
        queue.push(job)
        queue.remove(job)
        assert job not in queue and len(queue) == 0

    def test_snapshot_is_a_copy(self):
        queue = JobQueue()
        queue.push(make_job())
        snap = queue.snapshot()
        snap.clear()
        assert len(queue) == 1

    def test_top_priority_detection(self):
        queue = JobQueue()
        queue.push(make_job())
        assert not queue.has_top_priority_job
        queue.push(make_job(top_priority=True))
        assert queue.has_top_priority_job


class TestDynRequest:
    def test_resolve_invokes_callback_once(self):
        job = make_job()
        answers = []
        dreq = DynRequest(job, ResourceRequest(cores=4), 0.0, answers.append)
        grant = Allocation({0: 4})
        dreq.resolve(grant)
        assert answers == [grant]
        assert dreq.resolved

    def test_resolve_with_none_is_rejection(self):
        answers = []
        dreq = DynRequest(make_job(), ResourceRequest(cores=4), 0.0, answers.append)
        dreq.resolve(None)
        assert answers == [None]

    def test_double_resolve_rejected(self):
        dreq = DynRequest(make_job(), ResourceRequest(cores=4), 0.0, lambda g: None)
        dreq.resolve(None)
        with pytest.raises(RuntimeError):
            dreq.resolve(None)
