"""Tests on heterogeneous clusters (mixed core counts per node).

The paper's testbed is homogeneous, but nothing in the design requires it —
the availability profile and the scheduler are per-node throughout.  These
tests pin that property down.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.node import Node
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.metrics.validate import validate_trace
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload


def hetero_cluster():
    """4 + 8 + 16 + 32 cores = 60 total."""
    return Cluster(
        [
            Node(index=0, cores=4),
            Node(index=1, cores=8),
            Node(index=2, cores=16),
            Node(index=3, cores=32),
        ]
    )


class TestHeterogeneous:
    def test_total_capacity(self):
        assert hetero_cluster().total_cores == 60

    def test_shaped_request_needs_wide_enough_nodes(self):
        cluster = hetero_cluster()
        # ppn=16 fits only nodes 2 and 3
        alloc = cluster.find_allocation(ResourceRequest(nodes=2, ppn=16))
        assert alloc is not None
        assert set(alloc.keys()) == {2, 3}
        assert cluster.find_allocation(ResourceRequest(nodes=3, ppn=16)) is None

    def test_flexible_spans_mixed_nodes(self):
        system = BatchSystem(cluster=hetero_cluster(), config=MauiConfig())
        job = Job(request=ResourceRequest(cores=60), walltime=100.0)
        system.submit(job, FixedRuntimeApp(100.0))
        system.run()
        assert job.state is JobState.COMPLETED

    def test_reservation_respects_node_shapes(self):
        system = BatchSystem(cluster=hetero_cluster(), config=MauiConfig())
        # fill the 32-core node
        hog = Job(request=ResourceRequest(nodes=1, ppn=32), walltime=500.0)
        system.submit(hog, FixedRuntimeApp(500.0))
        # ppn=32 only exists on node 3: must wait for the hog
        wide = Job(request=ResourceRequest(nodes=1, ppn=32), walltime=100.0)
        system.submit(wide, FixedRuntimeApp(100.0))
        system.run()
        assert wide.start_time == pytest.approx(500.0)

    def test_dynamic_grant_on_mixed_nodes(self):
        system = BatchSystem(cluster=hetero_cluster(), config=MauiConfig())
        evo = Job(
            request=ResourceRequest(cores=4),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=40)),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        system.run(until=300.0)
        assert evo.dyn_granted == 1
        assert evo.allocation.total_cores == 44

    def test_random_workload_drains_and_validates(self):
        system = BatchSystem(cluster=hetero_cluster(), config=MauiConfig())
        make_random_workload(40, 60, size_range=(1, 32), seed=5).submit_to(system)
        system.run(max_events=100_000)
        assert all(j.is_finished for j in system.server.jobs.values())
        assert validate_trace(system.trace, system.cluster) == []
        assert system.cluster.used_cores == 0
