"""Tests for the terminal xy-plot renderer."""

import pytest

from repro.metrics.plot import SERIES_MARKS, render_xy_plot


class TestRenderXYPlot:
    def test_dimensions(self):
        text = render_xy_plot(
            {"s": [(0.0, 0.0), (10.0, 5.0)]}, width=40, height=10
        )
        rows = [l for l in text.splitlines() if "|" in l]
        assert len(rows) == 10
        assert all(len(l.split("|")[1]) == 40 for l in rows)

    def test_marks_assigned_in_order(self):
        text = render_xy_plot(
            {"first": [(0, 0)], "second": [(1, 1)]}, width=20, height=5
        )
        assert f"{SERIES_MARKS[0]}=first" in text
        assert f"{SERIES_MARKS[1]}=second" in text

    def test_later_series_wins_cell(self):
        text = render_xy_plot(
            {"under": [(0.0, 0.0)], "over": [(0.0, 0.0)]}, width=20, height=5
        )
        grid = "".join(l.split("|")[1] for l in text.splitlines() if "|" in l)
        assert SERIES_MARKS[1] in grid
        assert SERIES_MARKS[0] not in grid

    def test_extremes_on_grid_edges(self):
        text = render_xy_plot(
            {"s": [(0.0, 0.0), (100.0, 50.0)]}, width=30, height=8
        )
        rows = [l.split("|")[1] for l in text.splitlines() if "|" in l]
        assert rows[0][-1] == SERIES_MARKS[0]   # max y, max x -> top right
        assert rows[-1][0] == SERIES_MARKS[0]   # min y, min x -> bottom left

    def test_axis_labels(self):
        text = render_xy_plot(
            {"s": [(2.0, 10.0), (8.0, 90.0)]},
            x_label="jobs",
            y_label="wait",
            title="My Figure",
        )
        assert text.startswith("My Figure")
        assert "jobs" in text and "wait" in text
        assert "90" in text and "10" in text

    def test_constant_series(self):
        # zero spans must not divide by zero
        text = render_xy_plot({"s": [(5.0, 7.0), (5.0, 7.0)]}, width=20, height=5)
        assert SERIES_MARKS[0] in text

    def test_empty(self):
        assert "(no data)" in render_xy_plot({"s": []}, title="t")

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_xy_plot({"s": [(0, 0)]}, width=5, height=2)
