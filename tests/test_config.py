"""Tests for MauiConfig, DFSConfig and the Fig. 6 config-file parser."""

import pytest

from repro.maui.config import (
    DFSConfig,
    DFSPolicy,
    MauiConfig,
    PrincipalLimits,
    parse_maui_config,
)
from repro.units import UNLIMITED

FIG6 = r"""
DFSPOLICY          DFSSINGLEANDTARGETDELAY
DFSINTERVAL        06:00:00
DFSDECAY           0.4
USERCFG[user01]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                   DFSSINGLEDELAYTIME=0
USERCFG[user02]    DFSDYNDELAYPERM=0
USERCFG[user03]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                   DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                   DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05]  DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06]  DFSDYNDELAYPERM=0
"""


class TestDFSPolicy:
    def test_parse_canonical_names(self):
        assert DFSPolicy.parse("NONE") is DFSPolicy.NONE
        assert DFSPolicy.parse("DFSSingleJobDelay") is DFSPolicy.SINGLE_JOB_DELAY
        assert DFSPolicy.parse("dfstargetdelay") is DFSPolicy.TARGET_DELAY
        assert (
            DFSPolicy.parse("DFSSINGLEANDTARGETDELAY")
            is DFSPolicy.SINGLE_AND_TARGET_DELAY
        )

    def test_parse_paper_alias(self):
        # the paper also calls the combined policy "DFSSingleTargetDelay"
        assert DFSPolicy.parse("DFSSingleTargetDelay") is DFSPolicy.SINGLE_AND_TARGET_DELAY

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            DFSPolicy.parse("DFSMAGIC")

    def test_check_flags(self):
        assert DFSPolicy.SINGLE_JOB_DELAY.checks_single
        assert not DFSPolicy.SINGLE_JOB_DELAY.checks_target
        assert DFSPolicy.TARGET_DELAY.checks_target
        assert not DFSPolicy.TARGET_DELAY.checks_single
        assert DFSPolicy.SINGLE_AND_TARGET_DELAY.checks_single
        assert DFSPolicy.SINGLE_AND_TARGET_DELAY.checks_target


class TestDFSConfig:
    def test_defaults(self):
        dfs = DFSConfig()
        assert dfs.policy is DFSPolicy.NONE
        assert dfs.interval == 3600.0
        assert dfs.decay == 0.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DFSConfig(interval=0)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            DFSConfig(decay=1.5)

    def test_target_delay_for_all(self):
        dfs = DFSConfig.target_delay_for_all(500.0)
        assert dfs.policy is DFSPolicy.TARGET_DELAY
        assert dfs.default_user.target_delay_time == 500.0

    def test_limits_for_user_fallback(self):
        dfs = DFSConfig()
        records = dfs.limits_for(user="nobody")
        assert records == [("user", "nobody", dfs.default_user)]

    def test_limits_for_includes_configured_group(self):
        dfs = DFSConfig(groups={"g": PrincipalLimits(dyn_delay_perm=False)})
        kinds = [k for k, _, _ in dfs.limits_for(user="u", group="g")]
        assert kinds == ["user", "group"]

    def test_limits_for_skips_unconfigured_group(self):
        dfs = DFSConfig()
        kinds = [k for k, _, _ in dfs.limits_for(user="u", group="g")]
        assert kinds == ["user"]


class TestMauiConfig:
    def test_plan_depth_is_max_of_depths(self):
        config = MauiConfig(reservation_depth=2, reservation_delay_depth=7)
        assert config.plan_depth == 7
        config = MauiConfig(reservation_depth=5, reservation_delay_depth=1)
        assert config.plan_depth == 5

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            MauiConfig(reservation_depth=-1)


class TestParseMauiConfig:
    def test_fig6_full(self):
        config = parse_maui_config(FIG6, MauiConfig())
        dfs = config.dfs
        assert dfs.policy is DFSPolicy.SINGLE_AND_TARGET_DELAY
        assert dfs.interval == 6 * 3600
        assert dfs.decay == 0.4
        u1 = dfs.users["user01"]
        assert u1.dyn_delay_perm
        assert u1.target_delay_time == 3600.0
        assert u1.single_delay_time == UNLIMITED  # configured 0 = unlimited
        assert not dfs.users["user02"].dyn_delay_perm
        u3 = dfs.users["user03"]
        assert u3.target_delay_time == UNLIMITED
        assert u3.single_delay_time == 1800.0
        u4 = dfs.users["user04"]
        assert u4.target_delay_time == 7200.0
        assert u4.single_delay_time == 900.0
        assert dfs.groups["group05"].target_delay_time == 14400.0
        assert not dfs.groups["group06"].dyn_delay_perm

    def test_principal_names_keep_case(self):
        config = parse_maui_config("USERCFG[MixedCase] DFSDYNDELAYPERM=0\n", MauiConfig())
        assert "MixedCase" in config.dfs.users

    def test_comments_and_blank_lines(self):
        text = "# a comment\n\nDFSPOLICY NONE  # trailing\n"
        config = parse_maui_config(text, MauiConfig())
        assert config.dfs.policy is DFSPolicy.NONE

    def test_reservation_depths(self):
        config = parse_maui_config(
            "RESERVATIONDEPTH 5\nRESERVATIONDELAYDEPTH 7\n", MauiConfig()
        )
        assert config.reservation_depth == 5
        assert config.reservation_delay_depth == 7

    def test_backfill_policy(self):
        assert parse_maui_config("BACKFILLPOLICY NONE\n", MauiConfig()).backfill_enabled is False
        assert parse_maui_config("BACKFILLPOLICY FIRSTFIT\n", MauiConfig()).backfill_enabled is True

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration parameter"):
            parse_maui_config("DFSPOLICIE NONE\n", MauiConfig())

    def test_unknown_principal_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown principal parameter"):
            parse_maui_config("USERCFG[u] DFSWRONG=1\n", MauiConfig())

    def test_bad_perm_value_rejected(self):
        with pytest.raises(ValueError):
            parse_maui_config("USERCFG[u] DFSDYNDELAYPERM=yes\n", MauiConfig())

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_maui_config("USERCFG[u] DFSDYNDELAYPERM\n", MauiConfig())

    def test_empty_principal_name_rejected(self):
        with pytest.raises(ValueError, match="empty principal"):
            parse_maui_config("USERCFG[] DFSDYNDELAYPERM=0\n", MauiConfig())

    def test_account_class_qos_tables(self):
        text = (
            "ACCOUNTCFG[proj1] DFSTARGETDELAYTIME=100\n"
            "CLASSCFG[debug] DFSDYNDELAYPERM=0\n"
            "QOSCFG[gold] DFSSINGLEDELAYTIME=50\n"
        )
        config = parse_maui_config(text, MauiConfig())
        assert config.dfs.accounts["proj1"].target_delay_time == 100.0
        assert not config.dfs.classes["debug"].dyn_delay_perm
        assert config.dfs.qos["gold"].single_delay_time == 50.0

    def test_repeated_principal_merges(self):
        text = (
            "USERCFG[u] DFSTARGETDELAYTIME=100\n"
            "USERCFG[u] DFSSINGLEDELAYTIME=10\n"
        )
        config = parse_maui_config(text, MauiConfig())
        assert config.dfs.users["u"].target_delay_time == 100.0
        assert config.dfs.users["u"].single_delay_time == 10.0

    def test_trailing_continuation(self):
        config = parse_maui_config("USERCFG[u] DFSDYNDELAYPERM=0 \\\n", MauiConfig())
        assert not config.dfs.users["u"].dyn_delay_perm

    def test_invalid_final_decay_validated(self):
        with pytest.raises(ValueError):
            parse_maui_config("DFSDECAY 2.0\n", MauiConfig())
