"""Tests for the job model and evolution profiles."""

import pytest

from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile, EvolutionStep
from repro.jobs.job import Job, JobFlexibility, JobState


def make_job(**kw):
    defaults = dict(request=ResourceRequest(cores=4), walltime=100.0)
    defaults.update(kw)
    return Job(**defaults)


class TestJob:
    def test_defaults(self):
        job = make_job()
        assert job.state is JobState.QUEUED
        assert job.flexibility is JobFlexibility.RIGID
        assert not job.is_evolving
        assert job.job_id.startswith("job.")

    def test_seq_monotone(self):
        a, b = make_job(), make_job()
        assert b.seq > a.seq

    def test_explicit_job_id_preserved(self):
        assert make_job(job_id="myjob").job_id == "myjob"

    def test_nonpositive_walltime_rejected(self):
        with pytest.raises(ValueError):
            make_job(walltime=0)

    def test_evolution_profile_requires_evolving(self):
        with pytest.raises(ValueError):
            make_job(evolution=EvolutionProfile.esp_default())

    def test_evolving_job(self):
        job = make_job(
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.esp_default(),
        )
        assert job.is_evolving

    def test_is_active_states(self):
        job = make_job()
        assert not job.is_active
        job.state = JobState.RUNNING
        assert job.is_active
        job.state = JobState.DYNQUEUED
        assert job.is_active
        job.state = JobState.COMPLETED
        assert not job.is_active and job.is_finished

    def test_walltime_end_requires_start(self):
        job = make_job()
        with pytest.raises(ValueError):
            _ = job.walltime_end
        job.start_time = 50.0
        assert job.walltime_end == 150.0

    def test_wait_and_turnaround(self):
        job = make_job()
        job.submit_time, job.start_time, job.end_time = 10.0, 40.0, 90.0
        assert job.wait_time == 30.0
        assert job.turnaround_time == 80.0

    def test_wait_requires_records(self):
        with pytest.raises(ValueError):
            _ = make_job().wait_time

    def test_esp_type_metadata(self):
        assert make_job(metadata={"esp_type": "L"}).esp_type == "L"
        assert make_job().esp_type is None


class TestEvolutionStep:
    def test_valid(self):
        step = EvolutionStep(0.16, ResourceRequest(cores=4), (0.25,))
        assert step.attempt_fractions == (0.16, 0.25)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            EvolutionStep(0.0, ResourceRequest(cores=4))
        with pytest.raises(ValueError):
            EvolutionStep(1.0, ResourceRequest(cores=4))

    def test_retries_must_increase(self):
        with pytest.raises(ValueError):
            EvolutionStep(0.5, ResourceRequest(cores=4), (0.4,))
        with pytest.raises(ValueError):
            EvolutionStep(0.2, ResourceRequest(cores=4), (0.3, 0.3))

    def test_retry_below_one(self):
        with pytest.raises(ValueError):
            EvolutionStep(0.5, ResourceRequest(cores=4), (1.0,))


class TestEvolutionProfile:
    def test_esp_default(self):
        profile = EvolutionProfile.esp_default()
        assert len(profile) == 1
        step = profile.steps[0]
        assert step.at_fraction == 0.16
        assert step.retry_fractions == (0.25,)
        assert step.request.cores == 4

    def test_single_constructor(self):
        profile = EvolutionProfile.single(0.3, ResourceRequest(cores=8), [0.5, 0.7])
        assert profile.steps[0].attempt_fractions == (0.3, 0.5, 0.7)

    def test_total_extra_cores(self):
        profile = EvolutionProfile(
            steps=(
                EvolutionStep(0.1, ResourceRequest(cores=4)),
                EvolutionStep(0.5, ResourceRequest(nodes=1, ppn=8)),
            )
        )
        assert profile.total_extra_cores == 12

    def test_steps_must_be_ordered(self):
        with pytest.raises(ValueError):
            EvolutionProfile(
                steps=(
                    EvolutionStep(0.5, ResourceRequest(cores=4)),
                    EvolutionStep(0.4, ResourceRequest(cores=4)),
                )
            )

    def test_step_after_previous_retries(self):
        # the next step may not begin before the previous step's retries end
        with pytest.raises(ValueError):
            EvolutionProfile(
                steps=(
                    EvolutionStep(0.2, ResourceRequest(cores=4), (0.6,)),
                    EvolutionStep(0.5, ResourceRequest(cores=4)),
                )
            )

    def test_empty_profile_allowed(self):
        assert len(EvolutionProfile()) == 0
