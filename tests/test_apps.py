"""Tests for the application models (synthetic, Quadflow, AMR)."""

import pytest

from repro.apps.amr import AMRApp
from repro.apps.quadflow import CYLINDER, FLAT_PLATE, QuadflowApp, QuadflowCase, QuadflowPhase
from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem
from repro.units import hours


def submit_evolving(system, set_seconds, cores=4, extra=4, walltime=None, retries=(0.25,)):
    job = Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime if walltime is not None else set_seconds,
        user="evo",
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=extra), retries),
    )
    system.submit(job, EvolvingWorkApp(set_seconds))
    return job


class TestFixedRuntimeApp:
    def test_runs_exact_time(self, system):
        job = Job(request=ResourceRequest(cores=8), walltime=500.0)
        system.submit(job, FixedRuntimeApp(123.0))
        system.run()
        assert job.state is JobState.COMPLETED
        assert job.end_time == 123.0

    def test_invalid_runtime(self):
        with pytest.raises(ValueError):
            FixedRuntimeApp(0)


class TestEvolvingWorkApp:
    def test_granted_immediately_matches_linear_model(self, system):
        # grant arrives at 16% (idle machine): 0.16*W + 0.84*W*c/(c+4)
        job = submit_evolving(system, 1000.0, cores=4, extra=4)
        system.run()
        assert job.end_time == pytest.approx(0.16 * 1000 + 0.84 * 1000 * 0.5)

    def test_rejected_runs_full_set(self):
        system = BatchSystem(1, 4, MauiConfig())  # no room to grow
        job = submit_evolving(system, 1000.0, cores=4, extra=4)
        system.run()
        assert job.end_time == pytest.approx(1000.0)
        assert job.dyn_rejected == 2

    def test_grant_at_retry_point(self):
        system = BatchSystem(1, 8, MauiConfig())
        job = submit_evolving(system, 1000.0, cores=4, extra=4)
        # blocker frees the 4 spare cores between the attempts (160 < 200 < 250)
        blocker = Job(request=ResourceRequest(cores=4), walltime=200.0, user="b")
        system.submit(blocker, FixedRuntimeApp(200.0))
        system.run()
        # granted at 25%: 0.25*W + 0.75*W/2
        assert job.end_time == pytest.approx(0.25 * 1000 + 0.75 * 1000 * 0.5)

    def test_speedup_proportional_to_cores(self, system):
        job = submit_evolving(system, 1000.0, cores=8, extra=8)
        system.run()
        assert job.end_time == pytest.approx(0.16 * 1000 + 0.84 * 1000 * 0.5)

    def test_speed_property_tracks_allocation(self, system):
        app = EvolvingWorkApp(1000.0)
        job = Job(
            request=ResourceRequest(cores=4),
            walltime=1000.0,
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.esp_default(),
        )
        system.submit(job, app)
        system.run(until=200.0)
        assert app.speed == 2.0  # 4 -> 8 cores

    def test_release_slows_down(self, system):
        job = Job(request=ResourceRequest(cores=8), walltime=4000.0, user="w")
        system.submit(job, EvolvingWorkApp(1000.0, release_at_fraction=0.5, release_cores=4))
        system.run()
        # 500s at full speed, then 500s of work at half speed
        assert job.end_time == pytest.approx(500.0 + 1000.0)
        assert job.allocation.total_cores == 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EvolvingWorkApp(0)
        with pytest.raises(ValueError):
            EvolvingWorkApp(100, release_at_fraction=1.5)

    def test_restart_after_preemption_resets_progress(self):
        from repro.apps.synthetic import EvolvingWorkApp as App

        system = BatchSystem(2, 8, MauiConfig())
        app = App(400.0)
        job = Job(request=ResourceRequest(cores=4), walltime=400.0, user="v")
        system.submit(job, app)
        system.run(until=100.0)
        system.server.preempt_job(job)
        # the scheduler restarts it immediately; the app must start over
        system.run()
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(100.0 + 400.0)


class TestQuadflowCase:
    def test_presets_adaptation_counts(self):
        assert FLAT_PLATE.adaptations == 2
        assert CYLINDER.adaptations == 5

    def test_speed_saturates_below_threshold(self):
        # 20000 cells, threshold 3000: speed caps at 6.67 regardless of cores
        assert FLAT_PLATE.speed(20000, 16) == FLAT_PLATE.speed(20000, 32)
        assert FLAT_PLATE.speed(100000, 32) == 32.0

    def test_pre_final_phases_identical_16_vs_32(self):
        for case in (FLAT_PLATE, CYLINDER):
            for i in range(len(case.phases) - 1):
                assert case.phase_time(i, 16) == pytest.approx(case.phase_time(i, 32))

    def test_final_phase_halves_on_double_cores(self):
        for case in (FLAT_PLATE, CYLINDER):
            last = len(case.phases) - 1
            assert case.phase_time(last, 32) == pytest.approx(
                case.phase_time(last, 16) / 2
            )

    def test_paper_savings(self):
        # paper: FlatPlate 17% (~3h), Cylinder 33% (~10h)
        for case, saving_pct, saving_hours in (
            (FLAT_PLATE, 17.0, 3.0),
            (CYLINDER, 33.3, 10.0),
        ):
            static16 = case.total_time(16)
            dynamic, _ = case.dynamic_schedule(32)
            saved = static16 - sum(dynamic)
            assert saved / static16 * 100 == pytest.approx(saving_pct, abs=0.5)
            assert saved / 3600 == pytest.approx(saving_hours, abs=0.1)

    def test_dynamic_schedule_expansion_index(self):
        _, at = FLAT_PLATE.dynamic_schedule(32)
        assert at == 2  # the final phase crosses the threshold
        _, at = CYLINDER.dynamic_schedule(32)
        assert at == 5

    def test_invalid_case(self):
        with pytest.raises(ValueError):
            QuadflowCase(name="x", phases=(), threshold_cells_per_proc=10)
        with pytest.raises(ValueError):
            QuadflowPhase(cells=0, base_time=1.0)


class TestQuadflowApp:
    def _run(self, case, dynamic, nodes=2, cluster_nodes=4):
        system = BatchSystem(cluster_nodes, 8, MauiConfig())
        job = Job(
            request=ResourceRequest(nodes=nodes, ppn=8),
            walltime=hours(100),
            user="cfd",
            flexibility=JobFlexibility.EVOLVING if dynamic else JobFlexibility.RIGID,
        )
        system.submit(job, QuadflowApp(case, dynamic=dynamic))
        system.run()
        return job

    def test_static_run_records_phase_times(self):
        job = self._run(FLAT_PLATE, dynamic=False)
        assert len(job.metadata["phase_times"]) == 3
        assert job.metadata["expanded_at_phase"] is None
        assert sum(job.metadata["phase_times"]) == pytest.approx(FLAT_PLATE.total_time(16))

    def test_dynamic_run_expands_at_threshold(self):
        job = self._run(CYLINDER, dynamic=True)
        assert job.metadata["expanded_at_phase"] == 5
        assert job.dyn_granted == 1
        total = sum(job.metadata["phase_times"])
        assert total == pytest.approx(CYLINDER.total_time(16) - hours(10))

    def test_dynamic_run_without_idle_resources_continues_static(self):
        system = BatchSystem(2, 8, MauiConfig())  # no room to grow
        job = Job(
            request=ResourceRequest(nodes=2, ppn=8),
            walltime=hours(100),
            user="cfd",
            flexibility=JobFlexibility.EVOLVING,
        )
        system.submit(job, QuadflowApp(FLAT_PLATE, dynamic=True))
        system.run()
        assert job.dyn_granted == 0
        assert sum(job.metadata["phase_times"]) == pytest.approx(FLAT_PLATE.total_time(16))


class TestAMRApp:
    def _job(self, **kw):
        return Job(
            request=ResourceRequest(cores=4),
            walltime=kw.pop("walltime", 1e7),
            user="amr",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.esp_default(),
        )

    def test_deterministic_given_seed(self):
        cells = []
        for _ in range(2):
            system = BatchSystem(4, 8, MauiConfig())
            job = self._job()
            system.submit(job, AMRApp(seed=7, num_adaptations=3))
            system.run()
            cells.append(tuple(job.metadata["amr_cells"]))
        assert cells[0] == cells[1]
        assert len(cells[0]) == 4  # initial + 3 adaptations

    def test_growth_triggers_dynamic_request(self):
        system = BatchSystem(4, 8, MauiConfig())
        job = self._job()
        system.submit(
            job,
            AMRApp(
                seed=1,
                initial_cells=50_000,
                threshold_cells_per_proc=10_000,
                num_adaptations=3,
                growth_low=1.5,
                growth_high=2.0,
            ),
        )
        system.run()
        assert job.dyn_granted >= 1
        assert job.state is JobState.COMPLETED

    def test_memory_limit_aborts_without_resources(self):
        system = BatchSystem(1, 4, MauiConfig())  # nowhere to grow
        job = self._job()
        system.submit(
            job,
            AMRApp(
                seed=1,
                initial_cells=50_000,
                threshold_cells_per_proc=10_000,
                cells_per_proc_limit=30_000,
                num_adaptations=5,
                growth_low=1.8,
                growth_high=2.2,
            ),
        )
        system.run()
        assert job.state is JobState.ABORTED
        assert job.metadata["abort_reason"] == "out_of_memory"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AMRApp(initial_cells=0)
        with pytest.raises(ValueError):
            AMRApp(growth_low=2.0, growth_high=1.0)
