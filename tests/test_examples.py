"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; a broken example is a broken
promise.  Each script runs in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: every example and a string its output must contain
EXPECTATIONS = {
    "quickstart.py": "Dynamic grant",
    "fig1_scenario.py": "rejected",
    "deallocation.py": "released",
    "quadflow_case.py": "Cylinder",
    "negotiation.py": "estimated availability",
    "malleable_stealing.py": "shrink",
    "weather_nesting.py": "storms tracked",
    "fairness_tuning.py": "DFSSINGLEANDTARGETDELAY",
    "baselines_comparison.py": "Guaranteeing",
    "esp_campaign.py": "Dyn-600",
    "deep_booster.py": "kernels offloaded",
}


def test_every_example_has_an_expectation():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS), (
        "examples and EXPECTATIONS out of sync — add the new script here"
    )


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTATIONS[script] in out, f"{script} output missing marker"
