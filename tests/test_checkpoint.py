"""Tests for checkpoint-based preemption (PREEMPTPOLICY CHECKPOINT analogue)."""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def make_job(walltime=600.0, user="cp"):
    return Job(request=ResourceRequest(cores=4), walltime=walltime, user=user)


class TestCheckpointPreemption:
    def test_checkpointable_resumes_progress(self, system):
        app = EvolvingWorkApp(400.0, checkpointable=True)
        job = make_job()
        system.submit(job, app)
        system.run(until=150.0)
        system.server.preempt_job(job)
        system.run()
        # 150s done before preemption; only the remaining 250s rerun
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(150.0 + 250.0)
        assert job.metadata["checkpoint_work"] == pytest.approx(150.0)

    def test_non_checkpointable_restarts_from_zero(self, system):
        app = EvolvingWorkApp(400.0)
        job = make_job()
        system.submit(job, app)
        system.run(until=150.0)
        system.server.preempt_job(job)
        system.run()
        assert job.end_time == pytest.approx(150.0 + 400.0)
        assert "checkpoint_work" not in job.metadata

    def test_double_preemption_accumulates(self, system):
        app = EvolvingWorkApp(400.0, checkpointable=True)
        job = make_job(walltime=2000.0)
        system.submit(job, app)
        system.run(until=100.0)
        system.server.preempt_job(job)   # 100s banked
        system.run(until=250.0)          # restarts at 100, +150s more
        system.server.preempt_job(job)
        system.run()
        assert job.metadata["checkpoint_work"] == pytest.approx(250.0)
        # restarts are instantaneous on an idle machine, so no wall time is
        # lost at all: 100 + 150 + remaining 150 of work = 400s end to end
        assert job.end_time == pytest.approx(400.0)

    def test_checkpoint_under_scheduler_preemption(self):
        """Dynamic-request preemption spares checkpointed progress."""
        config = MauiConfig(preemption_for_dynamic=True)
        system = BatchSystem(2, 8, config)
        from repro.jobs.evolution import EvolutionProfile
        from repro.jobs.job import JobFlexibility

        evo = Job(
            request=ResourceRequest(cores=8),
            walltime=1000.0,
            user="evo",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.esp_default(),
        )
        system.submit(evo, EvolvingWorkApp(1000.0))
        blocker = system.submit(
            Job(request=ResourceRequest(cores=16), walltime=500.0, user="big"),
            FixedRuntimeApp(500.0),
        )
        # short enough to backfill before the blocker's reservation at t=1000
        victim = Job(request=ResourceRequest(cores=8), walltime=900.0, user="small")
        victim_app = EvolvingWorkApp(800.0, checkpointable=True)
        system.submit(victim, victim_app)
        system.run()
        assert victim.metadata.get("preempt_count", 0) == 1
        assert victim.metadata["checkpoint_work"] == pytest.approx(160.0)
        assert victim.state is JobState.COMPLETED
