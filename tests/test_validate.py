"""Tests for the trace validator, plus validation of real end-to-end runs."""

import pytest

from repro.cluster.machine import Cluster
from repro.maui.config import MauiConfig
from repro.metrics.validate import validate_trace
from repro.sim.events import EventKind, TraceLog
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload
from repro.workloads.random_workload import make_random_workload


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 8)


class TestValidator:
    def test_consistent_trace_passes(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_START, job_id="a", cores=8, nodes=[0])
        trace.record(5.0, EventKind.DYN_GRANT, job_id="a", cores=4, nodes=[1])
        trace.record(7.0, EventKind.DYN_RELEASE, job_id="a", cores=4, nodes=[1])
        trace.record(9.0, EventKind.JOB_END, job_id="a", cores=8)
        assert validate_trace(trace, cluster) == []

    def test_time_reversal_detected(self, cluster):
        trace = TraceLog()
        trace.record(5.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_SUBMIT, job_id="b")
        problems = validate_trace(trace, cluster)
        assert any("backwards" in p for p in problems)

    def test_double_submit_detected(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_SUBMIT, job_id="a")
        assert any("twice" in p for p in validate_trace(trace, cluster))

    def test_start_without_submit_detected(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_START, job_id="ghost", cores=4)
        assert any("without submission" in p for p in validate_trace(trace, cluster))

    def test_double_start_detected(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_START, job_id="a", cores=4)
        trace.record(2.0, EventKind.JOB_START, job_id="a", cores=4)
        assert any("already running" in p for p in validate_trace(trace, cluster))

    def test_overcapacity_detected(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_START, job_id="a", cores=33)
        assert any("exceed capacity" in p for p in validate_trace(trace, cluster))

    def test_grant_to_unknown_node_detected(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_START, job_id="a", cores=4, nodes=[0])
        trace.record(2.0, EventKind.DYN_GRANT, job_id="a", cores=4, nodes=[99])
        assert any("unknown node" in p for p in validate_trace(trace, cluster))

    def test_dangling_running_job_detected(self, cluster):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_SUBMIT, job_id="a")
        trace.record(1.0, EventKind.JOB_START, job_id="a", cores=4)
        assert any("still running" in p for p in validate_trace(trace, cluster))


class TestRealTracesValidate:
    """Every end-to-end scenario must leave a consistent event log."""

    def test_esp_dynamic_trace(self, paper_system):
        make_esp_workload(120, dynamic=True, seed=2014).submit_to(paper_system)
        paper_system.run(max_events=2_000_000)
        assert validate_trace(paper_system.trace, paper_system.cluster) == []

    def test_random_workload_trace(self):
        system = BatchSystem(8, 8, MauiConfig(preemption_for_dynamic=True))
        make_random_workload(60, 64, seed=21, evolving_share=0.4).submit_to(system)
        system.run(max_events=200_000)
        assert validate_trace(system.trace, system.cluster) == []

    def test_slurm_baseline_trace(self):
        from repro.baselines.slurm_style import make_slurm_esp_workload

        system = BatchSystem(
            15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
        )
        make_slurm_esp_workload(system, seed=2014).submit_to(system)
        system.run(max_events=2_000_000)
        assert validate_trace(system.trace, system.cluster) == []
