"""Tests for the backfill pass."""

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile
from repro.jobs.job import Job
from repro.maui.backfill import select_backfill


def profile(nodes=4, cores=8):
    idx = list(range(nodes))
    return AvailabilityProfile(idx, {i: cores for i in idx}, 0.0, {i: cores for i in idx})


def job(cores, walltime):
    j = Job(request=ResourceRequest(cores=cores), walltime=walltime)
    j.submit_time = 0.0
    return j


class TestSelectBackfill:
    def test_fills_idle_gap(self):
        prof = profile()
        # machine reserved from t=50 onwards
        prof.add_claim(50.0, 1000.0, Allocation({i: 8 for i in range(4)}))
        short = job(8, walltime=50.0)
        chosen = select_backfill([short], prof, 0.0)
        assert [p.job for p in chosen] == [short]
        assert chosen[0].start == 0.0

    def test_rejects_job_that_would_delay_reservation(self):
        prof = profile()
        prof.add_claim(50.0, 1000.0, Allocation({i: 8 for i in range(4)}))
        long = job(8, walltime=51.0)  # one second too long
        assert select_backfill([long], prof, 0.0) == []

    def test_accepts_job_running_beside_reservation(self):
        prof = profile()
        # reservation takes only half the machine
        prof.add_claim(50.0, 1000.0, Allocation({0: 8, 1: 8}))
        beside = job(16, walltime=500.0)
        chosen = select_backfill([beside], prof, 0.0)
        assert len(chosen) == 1

    def test_candidates_tried_in_order_and_claims_accumulate(self):
        prof = profile()
        prof.add_claim(50.0, 1000.0, Allocation({i: 8 for i in range(4)}))
        a, b, c = job(16, 50.0), job(16, 50.0), job(16, 50.0)
        chosen = select_backfill([a, b, c], prof, 0.0)
        # only 32 cores exist: the third candidate no longer fits
        assert [p.job for p in chosen] == [a, b]

    def test_skip_then_fit_smaller(self):
        prof = profile()
        prof.add_claim(50.0, 1000.0, Allocation({i: 8 for i in range(4)}))
        too_long = job(8, 200.0)
        fits = job(8, 40.0)
        chosen = select_backfill([too_long, fits], prof, 0.0)
        assert [p.job for p in chosen] == [fits]

    def test_empty_candidates(self):
        assert select_backfill([], profile(), 0.0) == []
