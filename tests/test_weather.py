"""Tests for the nested weather-simulation model (paper Section I, ref. [5])."""

import pytest

from repro.apps.weather import WeatherApp
from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.maui.config import MauiConfig
from repro.metrics.validate import validate_trace
from repro.sim.events import EventKind
from repro.system import BatchSystem


def weather_job(cores=8, walltime=4000.0):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=walltime,
        user="forecast",
        flexibility=JobFlexibility.EVOLVING,
    )


class TestWeatherApp:
    def test_tracks_phenomena_on_idle_machine(self, system):
        app = WeatherApp(3000.0, num_phenomena=2, nest_cores=4, seed=1)
        job = weather_job()
        system.submit(job, app)
        system.run()
        assert job.state is JobState.COMPLETED
        assert app.tracked_count == 2
        # every tracked nest was granted and later released (or returned at
        # job end): cores fully conserved
        assert system.cluster.used_cores == 0
        assert system.trace.count(EventKind.DYN_GRANT) == 2

    def test_nests_released_at_dissipation(self, system):
        app = WeatherApp(
            3000.0,
            num_phenomena=1,
            nest_cores=4,
            phenomenon_duration=(200.0, 200.0),
            seed=1,
        )
        job = weather_job()
        system.submit(job, app)
        system.run()
        releases = system.trace.of_kind(EventKind.DYN_RELEASE)
        assert len(releases) == 1
        grant = system.trace.of_kind(EventKind.DYN_GRANT)[0]
        assert releases[0].time == pytest.approx(grant.time + 200.0)

    def test_untracked_when_machine_full(self):
        system = BatchSystem(1, 8, MauiConfig())
        app = WeatherApp(3000.0, num_phenomena=2, nest_cores=4, seed=1)
        job = weather_job(cores=4)
        system.submit(job, app)
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=5000.0, user="block"),
            FixedRuntimeApp(5000.0),
        )
        system.run()
        assert job.state is JobState.COMPLETED  # forecast unaffected
        assert app.tracked_count == 0

    def test_deterministic_per_seed(self):
        counts = []
        for _ in range(2):
            system = BatchSystem(4, 8, MauiConfig())
            app = WeatherApp(3000.0, num_phenomena=3, seed=7)
            system.submit(weather_job(), app)
            system.run()
            counts.append(
                [(p.appears_at, p.duration, p.tracked) for p in app.phenomena]
            )
        assert counts[0] == counts[1]

    def test_overlapping_appearance_goes_untracked(self, system):
        # two phenomena appearing while a request is pending: the TM
        # protocol allows one in-flight request, the second is skipped
        app = WeatherApp(
            3000.0, num_phenomena=3, nest_cores=4, seed=3
        )
        job = weather_job()
        system.submit(job, app)
        system.run()
        assert 0 <= app.tracked_count <= 3
        assert validate_trace(system.trace, system.cluster) == []

    def test_trace_consistent(self, system):
        app = WeatherApp(2500.0, num_phenomena=4, nest_cores=2, seed=11)
        system.submit(weather_job(), app)
        system.run()
        assert validate_trace(system.trace, system.cluster) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WeatherApp(0.0)
        with pytest.raises(ValueError):
            WeatherApp(100.0, nest_cores=0)
