"""CLI telemetry views: trace tail, timeline sparklines, metrics dump."""

import pytest

from repro.cli import build_parser, main
from repro.obs.console import (
    render_event_tail,
    render_ledger_table,
    render_series_sparkline,
    sparkline,
)
from repro.sim.events import EventKind, TraceLog


class TestParser:
    def test_new_artifacts_accepted(self):
        for artifact in ("trace", "timeline", "metrics"):
            assert build_parser().parse_args([artifact]).artifact == artifact

    def test_telemetry_options(self):
        args = build_parser().parse_args(
            ["trace", "--tail", "5", "--sample-interval", "30",
             "--trace-maxlen", "1000", "-vv"]
        )
        assert args.tail == 5
        assert args.sample_interval == 30.0
        assert args.trace_maxlen == 1000
        assert args.verbose == 2

    def test_telemetry_out_option(self):
        args = build_parser().parse_args(["table2", "--telemetry-out", "/tmp/x"])
        assert args.telemetry_out == "/tmp/x"


class TestConsoleRenderers:
    def test_event_tail_golden(self):
        log = TraceLog()
        log.record(0.0, EventKind.JOB_SUBMIT, job_id="job.1", user="a")
        log.record(10.5, EventKind.JOB_START, job_id="job.1", cores=8)
        out = render_event_tail(log, n=10)
        assert out.splitlines() == [
            "t=        0.00  job_submit               job_id=job.1, user=a",
            "t=       10.50  job_start                cores=8, job_id=job.1",
        ]

    def test_event_tail_notes_hidden_and_dropped(self):
        log = TraceLog(maxlen=3)
        for t in range(5):
            log.record(float(t), EventKind.JOB_SUBMIT)
        out = render_event_tail(log, n=2)
        assert "... 3 earlier events not shown, 2 dropped by ring buffer ..." in out

    def test_event_tail_empty(self):
        assert render_event_tail(TraceLog()) == "(no events recorded)"

    def test_sparkline_golden(self):
        assert sparkline([0.0, 0.5, 1.0]) == "▁▅█"
        assert sparkline([2.0, 2.0]) == "▁▁"
        assert sparkline([]) == ""

    def test_series_sparkline_downsamples(self):
        series = [(float(t), float(t % 10)) for t in range(1000)]
        out = render_series_sparkline("queue", series, width=40)
        lines = out.splitlines()
        assert lines[0].startswith("queue  t=[0s .. 999s]")
        assert len(lines[1].strip()) == 42  # 40 chars plus brackets

    def test_ledger_table_golden(self):
        out = render_ledger_table({("user", "alice"): 120.0, ("group", "g1"): 60.5})
        assert out.splitlines() == [
            "DFS ledger (cumulative delay charged this interval)",
            "  kind     principal            delay[s]",
            "  group    g1                       60.5",
            "  user     alice                   120.0",
        ]

    def test_ledger_table_empty(self):
        assert "(no delay charged)" in render_ledger_table({})


class TestMain:
    def test_trace_prints_tail(self, capsys):
        assert main(["trace", "--tail", "5"]) == 0
        out = capsys.readouterr().out
        assert "last 5 trace events" in out
        assert "job_end" in out

    def test_timeline_prints_sparklines(self, capsys):
        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "queue_depth" in out
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_metrics_prints_registry_and_spans(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sched_iterations_total counter" in out
        assert "repro_jobs_completed_total 230" in out  # the ESP workload
        assert "DFS ledger" in out
        assert "sched_iteration" in out  # span summary table

    def test_verbose_flag_emits_component_logs(self, capsys):
        import logging

        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            # a fresh seed defeats the shared run cache so the run happens
            # (and logs) inside this verbose invocation
            assert main(["-v", "trace", "--tail", "1", "--seed", "7"]) == 0
            err = capsys.readouterr().err
            assert "repro.rms.server" in err
        finally:
            for handler in logger.handlers[:]:
                if handler not in before:
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)


class TestPerfObservatoryCLI:
    """perf-report / bench-trend subcommands and the windowed metrics view."""

    def test_parser_accepts_perf_artifacts(self):
        for artifact in ("perf-report", "bench-trend"):
            assert build_parser().parse_args([artifact]).artifact == artifact
        args = build_parser().parse_args(
            ["perf-report", "--phases", "p.jsonl", "--windows", "w.jsonl",
             "--window-width", "300"]
        )
        assert args.phases == "p.jsonl"
        assert args.windows == "w.jsonl"
        assert args.window_width == 300.0

    @pytest.fixture
    def dumps(self, tmp_path):
        from repro.obs.clock import ManualClock, reset_clock, set_clock
        from repro.obs.perf import PhaseProfiler
        from repro.obs.windows import WindowedMetrics
        from types import SimpleNamespace

        clk = ManualClock()
        set_clock(clk)
        try:
            prof = PhaseProfiler()
            prof.begin("engine_dispatch", sim_time=1.0)
            clk.advance(3_000_000)
            prof.begin("sched_iteration")
            clk.advance(2_000_000)
            prof.end()
            prof.end()
            phases = tmp_path / "phases.jsonl"
            with open(phases, "w") as fp:
                prof.export_phases_jsonl(fp)
        finally:
            reset_clock()
        w = WindowedMetrics(10.0, total_cores=8)
        w.reset_busy(0.0, 4)
        w.fold_job(
            SimpleNamespace(
                job_id="j", submit_time=0.0, start_time=2.0, end_time=12.0,
                state=SimpleNamespace(value="completed"),
                is_evolving=False, dyn_granted=0,
            )
        )
        w.on_busy_change(15.0, 0)
        windows = tmp_path / "windows.jsonl"
        with open(windows, "w") as fp:
            w.export_jsonl(fp)
        return str(phases), str(windows)

    def test_perf_report_offline(self, dumps, capsys):
        phases, windows = dumps
        assert main(["perf-report", "--phases", phases, "--windows", windows]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "sched_iteration" in out
        assert "streaming aggregates" in out
        assert "windowed aggregates" in out

    def test_metrics_accepts_windows_dump(self, dumps, capsys):
        _, windows = dumps
        assert main(["metrics", "--windows", windows]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "wait[s]" in out
        assert "jobs finished 1" in out

    @pytest.fixture
    def snapshots(self, tmp_path):
        import json

        base = {
            "schema": "repro-bench/1",
            "groups": {"g": {"t": {"wall_ms": 100.0, "jobs": 3}}},
        }
        cur = {
            "schema": "repro-bench/1",
            "groups": {"g": {"t": {"wall_ms": 400.0, "jobs": 3}}},
        }
        b, c = tmp_path / "base.json", tmp_path / "cur.json"
        b.write_text(json.dumps(base))
        c.write_text(json.dumps(cur))
        return str(b), str(c)

    def test_bench_trend_reports_regression(self, snapshots, capsys):
        base, cur = snapshots
        assert main(["bench-trend", "--baseline", base, "--current", cur]) == 0
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "+300.0%" in out

    def test_bench_trend_fail_on_regress_exits_nonzero(self, snapshots, capsys):
        base, cur = snapshots
        with pytest.raises(SystemExit) as excinfo:
            main(["bench-trend", "--baseline", base, "--current", cur,
                  "--fail-on-regress"])
        assert excinfo.value.code == 1
        assert "regressed" in capsys.readouterr().out

    def test_bench_trend_identical_snapshots_pass(self, snapshots, capsys):
        base, _ = snapshots
        assert main(["bench-trend", "--baseline", base, "--current", base,
                     "--fail-on-regress"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_trend_requires_paths(self):
        with pytest.raises(SystemExit):
            main(["bench-trend"])


class TestFairnessRenderers:
    def test_fairness_table_golden(self):
        from repro.obs.console import render_fairness_table

        rows = [
            {"account": "phys", "jobs": 3, "core_seconds": 1200.0,
             "share": 0.6, "target": 0.5, "share_error": 0.1,
             "mean_wait": 30.0, "mean_stretch": 1.5},
        ]
        out = render_fairness_table(rows)
        assert out.splitlines()[0] == "fairness observatory (per-account shares)"
        assert (
            "  phys                  3         1200    0.600    0.500"
            "    0.100       30.0     1.50"
        ) in out

    def test_fairness_table_handles_missing_stats(self):
        from repro.obs.console import render_fairness_table

        out = render_fairness_table(
            [{"account": "a", "core_seconds": 5.0, "share": None, "target": None}]
        )
        assert "-" in out
        assert "(no usage accrued)" in render_fairness_table([])

    def test_slo_summary_golden(self):
        from repro.obs.console import render_slo_summary

        out = render_slo_summary(
            [
                {"objective": "p99_wait < 4h", "evaluations": 10, "breaches": 0,
                 "worst_value": 90.0, "ok": True},
                {"objective": "jain >= 0.9", "evaluations": 10, "breaches": 4,
                 "worst_value": 0.41, "ok": False},
            ]
        )
        lines = out.splitlines()
        assert lines[0] == "SLO objectives:"
        assert lines[2].endswith("OK")
        assert lines[3].endswith("BREACHED")
        assert "(no objectives declared)" in render_slo_summary([])

    def test_breach_tail_hides_older_entries(self):
        from repro.obs.console import render_breach_tail

        breaches = [
            {"seq": i, "window": i, "start": 0.0, "end": 10.0,
             "objective": "max_wait < 5", "value": 8.0, "job_id": f"job.{i}"}
            for i in range(1, 6)
        ]
        out = render_breach_tail(breaches, n=2)
        assert "... 3 earlier breaches not shown ..." in out
        assert "job.5" in out and "job.2" not in out
        assert render_breach_tail([]) == "(no breaches recorded)"


class TestFairnessSLOCommands:
    def test_parser_accepts_new_artifacts(self):
        for artifact in ("fairness", "slo"):
            assert build_parser().parse_args([artifact]).artifact == artifact

    def test_slo_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["slo", "--slo", "p99_wait < 4h", "--slo", "jain >= 0.9"]
        )
        assert args.slo == ["p99_wait < 4h", "jain >= 0.9"]
        assert build_parser().parse_args(["table2"]).slo is None

    def test_fairness_prints_shares_and_distributions(self, capsys):
        assert main(["fairness"]) == 0
        out = capsys.readouterr().out
        assert "fairness observatory (per-account shares)" in out
        assert "jain_index=" in out
        assert "per-account distributions" in out
        assert "user06" in out

    def test_slo_prints_verdicts_and_breach_why(self, capsys):
        assert main(["slo"]) == 0
        out = capsys.readouterr().out
        assert "SLO objectives:" in out
        assert "BREACHED" in out and "OK" in out
        # the worked breach-to-why example: a causal chain ending in the
        # slo_breach decision for the window's worst-wait job
        assert "why job." in out
        assert "slo_breach" in out

    def test_slo_with_explicit_objective(self, capsys):
        assert main(["slo", "--slo", "mean_wait < 1000h"]) == 0
        out = capsys.readouterr().out
        assert "mean_wait < 1000h" in out
        assert "BREACHED" not in out

    def test_metrics_includes_account_rows(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "fairness observatory (per-account shares)" in out
        assert "repro_fairness_jain_index" in out
