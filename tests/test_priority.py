"""Tests for the prioritizer and the static fairshare tracker."""

import pytest

from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import PriorityWeightsConfig
from repro.maui.priority import FairshareTracker, Prioritizer


def make_job(submit=0.0, **kw):
    defaults = dict(request=ResourceRequest(cores=4), walltime=100.0)
    defaults.update(kw)
    job = Job(**defaults)
    job.submit_time = submit
    return job


def make_prioritizer(**weights):
    w = PriorityWeightsConfig(**weights)
    fairshare = FairshareTracker(w.fairshare_interval, w.fairshare_decay)
    return Prioritizer(w, fairshare), fairshare


class TestPriority:
    def test_queue_time_orders_fifo(self):
        prio, _ = make_prioritizer()
        early, late = make_job(submit=0.0), make_job(submit=100.0)
        ordered = prio.order([late, early], now=200.0)
        assert ordered == [early, late]

    def test_ties_break_by_seq(self):
        prio, _ = make_prioritizer()
        a, b = make_job(submit=0.0), make_job(submit=0.0)
        assert prio.order([b, a], now=10.0) == [a, b]

    def test_top_priority_dominates(self):
        prio, _ = make_prioritizer()
        old = make_job(submit=0.0)
        z = make_job(submit=10_000.0, top_priority=True)
        assert prio.order([old, z], now=20_000.0)[0] is z

    def test_unsubmitted_job_rejected(self):
        prio, _ = make_prioritizer()
        job = Job(request=ResourceRequest(cores=1), walltime=10.0)
        with pytest.raises(ValueError):
            prio.priority(job, now=0.0)

    def test_fairshare_weight_prefers_light_users(self):
        prio, fairshare = make_prioritizer(queue_time=0.0, fairshare=1000.0)
        fairshare.add_usage("heavy", 10_000.0)
        heavy = make_job(submit=0.0, user="heavy")
        light = make_job(submit=0.0, user="light")
        assert prio.order([heavy, light], now=0.0)[0] is light

    def test_service_weight_prefers_larger_jobs(self):
        prio, _ = make_prioritizer(queue_time=0.0, service=1.0)
        small = make_job(submit=0.0, request=ResourceRequest(cores=2))
        big = make_job(submit=0.0, request=ResourceRequest(cores=16))
        assert prio.order([small, big], now=0.0)[0] is big


class TestFairshareTracker:
    def test_usage_accumulates(self):
        fs = FairshareTracker(interval=100.0, decay=0.5)
        fs.add_usage("u", 40.0)
        fs.add_usage("u", 10.0)
        assert fs.usage("u") == 50.0

    def test_roll_decays(self):
        fs = FairshareTracker(interval=100.0, decay=0.5)
        fs.add_usage("u", 80.0)
        fs.roll(100.0)
        assert fs.usage("u") == 40.0
        fs.roll(300.0)  # two more intervals
        assert fs.usage("u") == 10.0

    def test_zero_decay_clears(self):
        fs = FairshareTracker(interval=100.0, decay=0.0)
        fs.add_usage("u", 80.0)
        fs.roll(150.0)
        assert fs.usage("u") == 0.0

    def test_normalized_usage(self):
        fs = FairshareTracker(interval=100.0, decay=0.5)
        fs.add_usage("a", 30.0)
        fs.add_usage("b", 10.0)
        assert fs.normalized_usage("a") == pytest.approx(0.75)
        assert fs.normalized_usage("missing") == 0.0

    def test_normalized_usage_empty(self):
        fs = FairshareTracker(interval=100.0, decay=0.5)
        assert fs.normalized_usage("anyone") == 0.0

    def test_negative_usage_rejected(self):
        fs = FairshareTracker(interval=100.0, decay=0.5)
        with pytest.raises(ValueError):
            fs.add_usage("u", -1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            FairshareTracker(interval=0.0, decay=0.5)
        with pytest.raises(ValueError):
            FairshareTracker(interval=10.0, decay=1.5)


class TestExtendedFactors:
    def test_xfactor_boosts_short_waiting_jobs(self):
        prio, _ = make_prioritizer(queue_time=0.0, expansion_factor=1.0)
        short = make_job(submit=0.0, walltime=10.0)
        long = make_job(submit=0.0, walltime=10_000.0)
        # both waited 100s; XFactor = (100+10)/10 = 11 vs ~1.01
        ordered = prio.order([long, short], now=100.0)
        assert ordered[0] is short

    def test_credential_weights(self):
        prio, _ = make_prioritizer(
            queue_time=0.0,
            credential=1.0,
            user_priorities={"vip": 100.0, "regular": 0.0},
        )
        vip = make_job(submit=0.0, user="vip")
        regular = make_job(submit=0.0, user="regular")
        assert prio.order([regular, vip], now=0.0)[0] is vip

    def test_unknown_user_gets_zero_credential(self):
        prio, _ = make_prioritizer(queue_time=0.0, credential=1.0,
                                   user_priorities={"vip": 100.0})
        vip = make_job(submit=0.0, user="vip")
        nobody = make_job(submit=0.0, user="nobody")
        assert prio.order([nobody, vip], now=0.0)[0] is vip

    def test_factors_combine(self):
        prio, _ = make_prioritizer(queue_time=1.0, credential=1.0,
                                   user_priorities={"vip": 5.0})
        vip_new = make_job(submit=100.0, user="vip")
        old = make_job(submit=0.0, user="other")
        # old has 100s queue time > vip's 0 + 5 credential
        assert prio.order([vip_new, old], now=100.0)[0] is old
