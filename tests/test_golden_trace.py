"""Golden-trace regression tests.

A hand-analysed scenario with its exact expected event sequence: any change
to scheduler ordering, priorities or the dynamic path that alters observable
behaviour fails here loudly, with the full diff in the assertion message.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import MauiConfig
from repro.sim.events import EventKind
from repro.system import BatchSystem

#: event kinds that define observable scheduling behaviour (iteration and
#: reservation chatter excluded: their count is an implementation detail)
OBSERVABLE = {
    EventKind.JOB_SUBMIT,
    EventKind.JOB_START,
    EventKind.BACKFILL_START,
    EventKind.JOB_END,
    EventKind.JOB_ABORT,
    EventKind.DYN_REQUEST,
    EventKind.DYN_GRANT,
    EventKind.DYN_REJECT,
    EventKind.DYN_RELEASE,
}


def observable_trace(system):
    return [
        (round(e.time, 3), e.kind.value, e.payload.get("job_id"))
        for e in system.trace
        if e.kind in OBSERVABLE
    ]


def test_golden_mixed_scenario():
    """2 nodes x 8; one rigid blocker, one backfill, one evolving job.

    Hand analysis:
      t=0    a(8c,300s) starts; wide(16c) blocked, reserved at t=300;
             small(8c,100s) backfills beside a; evo(4c) cannot backfill
             (walltime 1000 crosses wide's reservation).
      t=100  small ends.
      t=300  a ends; wide starts (16c, 200s).
      t=500  wide ends; evo starts (4c).
      t=660  evo requests +4 at 16% of SET=1000; 12 cores idle -> granted.
      t=1080 evo ends (160 + 840/2 = 580 after its start at 500).
    """
    system = BatchSystem(2, 8, MauiConfig())
    a = system.submit(
        Job(request=ResourceRequest(cores=8), walltime=300.0, user="a"),
        FixedRuntimeApp(300.0),
    )
    wide = system.submit(
        Job(request=ResourceRequest(cores=16), walltime=200.0, user="w"),
        FixedRuntimeApp(200.0),
    )
    small = system.submit(
        Job(request=ResourceRequest(cores=8), walltime=100.0, user="s"),
        FixedRuntimeApp(100.0),
    )
    evo = system.submit(
        Job(
            request=ResourceRequest(cores=4),
            walltime=1000.0,
            user="e",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.esp_default(),
        ),
        EvolvingWorkApp(1000.0),
    )
    system.run()

    expected = [
        (0.0, "job_submit", a.job_id),
        (0.0, "job_submit", wide.job_id),
        (0.0, "job_submit", small.job_id),
        (0.0, "job_submit", evo.job_id),
        (0.0, "job_start", a.job_id),
        (0.0, "backfill_start", small.job_id),
        (100.0, "job_end", small.job_id),
        (300.0, "job_end", a.job_id),
        (300.0, "job_start", wide.job_id),
        (500.0, "job_end", wide.job_id),
        (500.0, "job_start", evo.job_id),
        (660.0, "dyn_request", evo.job_id),
        (660.0, "dyn_grant", evo.job_id),
        (1080.0, "job_end", evo.job_id),
    ]
    assert observable_trace(system) == expected


def test_golden_static_rejection_scenario():
    """Algorithm 1 (dynamic disabled): the request is rejected, retry too."""
    system = BatchSystem(1, 8, MauiConfig(dynamic_enabled=False))
    evo = system.submit(
        Job(
            request=ResourceRequest(cores=4),
            walltime=1000.0,
            user="e",
            flexibility=JobFlexibility.EVOLVING,
            evolution=EvolutionProfile.esp_default(),
        ),
        EvolvingWorkApp(1000.0),
    )
    system.run()
    expected = [
        (0.0, "job_submit", evo.job_id),
        (0.0, "job_start", evo.job_id),
        (160.0, "dyn_request", evo.job_id),
        (160.0, "dyn_reject", evo.job_id),
        (250.0, "dyn_request", evo.job_id),
        (250.0, "dyn_reject", evo.job_id),
        (1000.0, "job_end", evo.job_id),
    ]
    assert observable_trace(system) == expected
