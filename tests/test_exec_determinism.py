"""Parallel campaigns must be byte-identical to serial ones.

The exec engine's whole contract is that ``workers=N`` only changes wall
clock, never results.  These tests run the real seed sweep both ways and
compare the full float bit patterns (via ``json.dumps``, which round-trips
doubles through ``repr``) and the rendered report text.
"""

import json

import pytest

from repro.experiments.sweep import render_sweep, run_seed_sweep

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seeds", [[5, 11], [3]], ids=["two-seeds", "one-seed"])
def test_sweep_parallel_matches_serial(seeds):
    serial = run_seed_sweep(seeds, workers=1)
    parallel = run_seed_sweep(seeds, workers=4)
    assert serial.seeds == parallel.seeds
    assert list(serial.samples) == list(parallel.samples)  # config order too
    assert json.dumps(serial.samples) == json.dumps(parallel.samples)
    assert render_sweep(serial) == render_sweep(parallel)


def test_campaign_parallel_matches_serial():
    from repro.workloads.random_workload import run_random_campaign

    serial = run_random_campaign(60, seeds=[0, 1, 2], workers=1)
    parallel = run_random_campaign(60, seeds=[0, 1, 2], workers=3)
    assert json.dumps(serial) == json.dumps(parallel)


def test_table2_parallel_matches_fresh_serial():
    from repro.exec.specs import Table2RunSpec, run_table2_result
    from repro.experiments.configs import all_configurations
    from repro.experiments.table2 import run_table2

    parallel = run_table2(workers=2)
    serial = [run_table2_result(Table2RunSpec(c.name, 2014)) for c in all_configurations()]
    def decisions(stats):
        # everything except actual wall-clock timers, which legitimately vary
        return {k: v for k, v in stats.items() if k != "dyn_handle_seconds"}

    for a, b in zip(serial, parallel):
        assert a.configuration.name == b.configuration.name
        # job ids/seqs come from a process-global counter and differ between
        # interpreter instances; compare the headline metrics instead
        ma, mb = a.metrics, b.metrics
        assert (ma.workload_time, ma.utilization, ma.mean_wait) == (
            mb.workload_time, mb.utilization, mb.mean_wait
        )
        assert ma.satisfied_dyn_jobs == mb.satisfied_dyn_jobs
        assert ma.completed_jobs == mb.completed_jobs
        assert decisions(a.scheduler_stats) == decisions(b.scheduler_stats)
