"""SLO engine: objective parsing, windowed evaluation, breach causality.

The unit layer drives a :class:`WindowedMetrics` by hand and checks that
objectives evaluate exactly at frame close — breaches anchored to the
window's worst-wait job, mirrored into the trace and the decision
ledger.  The end-to-end layer runs a real workload and checks the
deterministic export contract.
"""

import io
from types import SimpleNamespace

import pytest

from repro.maui.config import MauiConfig
from repro.obs import SLOEngine, Telemetry, parse_slo
from repro.obs.ledger import DecisionLedger
from repro.obs.windows import WindowedMetrics
from repro.sim.events import EventKind, TraceLog
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload


class TestParse:
    def test_plain_threshold(self):
        obj = parse_slo("mean_wait < 120")
        assert (obj.metric, obj.op, obj.threshold) == ("mean_wait", "<", 120.0)
        assert obj.quantile is None

    @pytest.mark.parametrize(
        "text,seconds",
        [("p99_wait < 4h", 14400.0), ("p90_wait <= 30m", 1800.0),
         ("max_wait < 45s", 45.0)],
    )
    def test_duration_suffixes(self, text, seconds):
        assert parse_slo(text).threshold == seconds

    def test_quantile_metrics(self):
        assert parse_slo("p99_wait < 1h").quantile == 0.99
        assert parse_slo("p50_slowdown <= 3").quantile == 0.5

    def test_lower_bound_objectives(self):
        obj = parse_slo("jain >= 0.9")
        assert obj.holds(0.95)
        assert not obj.holds(0.5)

    @pytest.mark.parametrize(
        "bad",
        ["p99_wait", "wait < 10", "p99_memory < 10", "mean_wait < ten",
         "p00_wait < 10", "mean_wait ~ 10"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_engine_requires_objectives(self):
        with pytest.raises(ValueError):
            SLOEngine([])


def _job(job_id, user, submit, start, end):
    return SimpleNamespace(
        job_id=job_id,
        user=user,
        account="default",
        submit_time=submit,
        start_time=start,
        end_time=end,
        state=SimpleNamespace(value="completed"),
        is_evolving=False,
        dyn_granted=0,
    )


def _advance(windows, t):
    """Push every lagging integral feed past ``t`` so frames close."""
    windows.on_busy_change(t, 0)
    windows.observe_queue_depth(t, 0)


class TestEngine:
    def _engine(self, objectives, *, trace=None, ledger=None):
        windows = WindowedMetrics(10.0, total_cores=8)
        engine = SLOEngine(objectives)
        engine.attach_windows(windows)
        if trace is not None or ledger is not None:
            engine.attach_trace(
                trace if trace is not None else TraceLog(), ledger=ledger
            )
        return windows, engine

    def test_quantile_must_be_sketched(self):
        windows = WindowedMetrics(10.0)
        with pytest.raises(ValueError, match="p75"):
            SLOEngine(["p75_wait < 10"]).attach_windows(windows)

    def test_breach_fires_at_frame_close_with_anchor(self):
        windows, engine = self._engine(["max_wait < 5"])
        windows.fold_job(_job("job.1", "alice", 0.0, 2.0, 3.0))
        windows.fold_job(_job("job.2", "bob", 0.0, 8.0, 9.0))
        assert engine.breaches == []  # nothing closed yet
        _advance(windows, 20.0)
        (breach,) = engine.breaches
        assert breach["objective"] == "max_wait < 5"
        assert breach["value"] == pytest.approx(8.0)
        assert breach["window"] == 0
        # anchored to the worst-wait job of the window
        assert breach["job_id"] == "job.2"
        assert breach["job_user"] == "bob"
        assert breach["job_submit"] == 0.0

    def test_holding_objective_does_not_breach(self):
        windows, engine = self._engine(["max_wait < 5"])
        windows.fold_job(_job("job.1", "alice", 0.0, 2.0, 3.0))
        _advance(windows, 20.0)
        assert engine.breaches == []
        (row,) = engine.summary()
        assert row["ok"] and row["evaluations"] == 1
        assert row["worst_value"] == pytest.approx(2.0)

    def test_empty_window_is_skipped_not_breached(self):
        windows, engine = self._engine(["mean_wait < 1"])
        windows.fold_job(_job("job.1", "alice", 0.0, 6.0, 7.0))
        # advancing to t=40 closes empty frames 1 and 2 alongside frame 0
        _advance(windows, 40.0)
        (row,) = engine.summary()
        assert row["evaluations"] == 1
        assert row["breaches"] == 1

    def test_worst_value_direction_per_bound(self):
        windows, engine = self._engine(["mean_wait < 100", "p90_wait > 0"])
        windows.fold_job(_job("job.1", "a", 0.0, 2.0, 3.0))
        windows.fold_job(_job("job.2", "b", 10.0, 18.0, 19.0))
        _advance(windows, 40.0)
        upper, lower = engine.summary()
        assert upper["worst_value"] == pytest.approx(8.0)  # max for <
        assert lower["worst_value"] == pytest.approx(2.0)  # min for >

    def test_breach_mirrors_into_trace_and_ledger(self):
        trace = TraceLog()
        ledger = DecisionLedger()
        windows, engine = self._engine(
            ["max_wait < 5"], trace=trace, ledger=ledger
        )
        windows.fold_job(_job("job.9", "alice", 0.0, 8.0, 9.0))
        _advance(windows, 20.0)
        (event,) = [e for e in trace if e.kind == EventKind.SLO_BREACH]
        assert event.payload["job_id"] == "job.9"
        assert event.payload["objective"] == "max_wait < 5"
        chain = ledger.causal_chain("job.9")
        assert any(d["kind"] == "slo_breach" for d in chain)

    def test_finalize_evaluates_open_frames_once(self):
        windows, engine = self._engine(["max_wait < 5"])
        windows.fold_job(_job("job.1", "alice", 0.0, 8.0, 9.0))
        engine.finalize()
        assert len(engine.breaches) == 1
        engine.finalize()  # idempotent: the frame is already evaluated
        _advance(windows, 20.0)  # ... also when it properly closes later
        assert len(engine.breaches) == 1

    def test_fairness_metrics_read_latest_sample(self):
        fairness = SimpleNamespace(
            latest={"jain": 0.4, "max_share_error": 0.3}, finalize=lambda now: None
        )
        windows = WindowedMetrics(10.0)
        engine = SLOEngine(["jain >= 0.9", "share_error < 0.1"], fairness=fairness)
        engine.attach_windows(windows)
        windows.fold_job(_job("job.1", "a", 0.0, 1.0, 2.0))
        _advance(windows, 20.0)
        assert len(engine.breaches) == 2
        # fairness breaches carry no job anchor
        assert all(b["job_id"] is None for b in engine.breaches)

    def test_export_strips_job_id_and_is_deterministic(self):
        def build():
            windows, engine = self._engine(["max_wait < 5"])
            windows.fold_job(_job("job.7", "alice", 0.0, 8.0, 9.0))
            _advance(windows, 20.0)
            buf = io.StringIO()
            engine.export_jsonl(buf)
            return buf.getvalue()

        text = build()
        assert text == build()
        assert '"schema":"repro-slo/1"' in text
        assert '"job_user":"alice"' in text
        assert '"job_id"' not in text


class TestEndToEnd:
    def _run(self):
        telemetry = Telemetry(
            windows=300.0, slo=["p90_wait < 60", "jain >= 0.99"]
        )
        system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
        make_random_workload(
            80, system.cluster.total_cores, seed=7, mean_interarrival=30.0
        ).submit_to(system)
        system.run(max_events=1_000_000)
        return telemetry

    def test_slo_requires_windows(self):
        with pytest.raises(ValueError):
            Telemetry(slo=["mean_wait < 10"])

    def test_slo_implies_fairness(self):
        telemetry = self._run()
        assert telemetry.fairness is not None
        assert telemetry.slo.fairness is telemetry.fairness

    def test_evaluations_cover_every_materialised_window(self):
        telemetry = self._run()
        windows = telemetry.windows
        assert not windows._open or all(
            f.index in telemetry.slo._evaluated for f in windows._open.values()
        )
        for row in telemetry.slo.summary():
            assert row["evaluations"] > 0

    def test_export_round_trip_is_stable(self):
        first, second = (io.StringIO(), io.StringIO())
        self._run().slo.export_jsonl(first)
        self._run().slo.export_jsonl(second)
        assert first.getvalue() == second.getvalue()
