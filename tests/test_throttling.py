"""Tests for per-user throttling policies (Maui MAXJOB / MAXIJOB)."""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def job(user, cores=4, walltime=100.0):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user)


class TestMaxRunning:
    def test_cap_limits_concurrent_jobs(self):
        system = BatchSystem(4, 8, MauiConfig(max_running_jobs_per_user=2))
        jobs = [system.submit(job("hog"), FixedRuntimeApp(100.0)) for _ in range(4)]
        system.run(until=0.0)
        running = [j for j in jobs if j.state is JobState.RUNNING]
        assert len(running) == 2  # machine has room for 8, cap says 2

    def test_cap_releases_as_jobs_finish(self):
        system = BatchSystem(4, 8, MauiConfig(max_running_jobs_per_user=2))
        jobs = [system.submit(job("hog"), FixedRuntimeApp(100.0)) for _ in range(4)]
        system.run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        starts = sorted(j.start_time for j in jobs)
        assert starts == [0.0, 0.0, 100.0, 100.0]

    def test_other_users_unaffected(self):
        system = BatchSystem(4, 8, MauiConfig(max_running_jobs_per_user=1))
        hogs = [system.submit(job("hog"), FixedRuntimeApp(100.0)) for _ in range(2)]
        other = system.submit(job("polite"), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        assert other.state is JobState.RUNNING
        assert sum(j.state is JobState.RUNNING for j in hogs) == 1


class TestMaxEligible:
    def test_eligible_set_capped_per_user(self):
        system = BatchSystem(
            1, 8, MauiConfig(max_eligible_jobs_per_user=2, reservation_depth=5)
        )
        for _ in range(5):
            system.submit(job("a", cores=8), FixedRuntimeApp(100.0))
        system.submit(job("b", cores=8), FixedRuntimeApp(100.0))
        eligible = system.scheduler._eligible_static(system.now)
        by_user = {}
        for j in eligible:
            by_user[j.user] = by_user.get(j.user, 0) + 1
        assert by_user == {"a": 2, "b": 1}

    def test_capped_jobs_get_no_reservations(self):
        # jobs beyond the cap are invisible: they cannot hold reservations
        system = BatchSystem(
            1, 8, MauiConfig(max_eligible_jobs_per_user=1, reservation_depth=5)
        )
        for _ in range(4):
            system.submit(job("a", cores=8), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        # one running + one reservation at most (only one eligible at a time)
        assert system.scheduler.stats["reservations_created"] <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MauiConfig(max_running_jobs_per_user=0)
        with pytest.raises(ValueError):
            MauiConfig(max_eligible_jobs_per_user=-1)


class TestInteraction:
    def test_throttled_jobs_eventually_complete(self):
        system = BatchSystem(
            2, 8, MauiConfig(max_running_jobs_per_user=1, max_eligible_jobs_per_user=2)
        )
        jobs = [system.submit(job(f"u{i % 2}"), FixedRuntimeApp(50.0)) for i in range(8)]
        system.run(max_events=20_000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
