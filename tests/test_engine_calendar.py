"""Calendar-queue vs binary-heap equivalence (the engine's bit-identity pin).

The engine promises one dispatch order — the total order of
``(time, priority, seq)`` — regardless of the backing queue structure.
These tests replay identical randomized schedule/cancel/run scripts
through a pure-heap engine, a pure-calendar engine, and the adaptive
engine, and assert identical dispatch logs, clocks, and ``pending`` /
``heap_size`` accounting.

The scripts are generated as data first (an event tree: each fired event
may schedule children and cancel other events by id), so all engines see
byte-identical stimulus including events scheduled *from within*
callbacks — the case that exercises live-bucket appends, mid-batch
cancellation, and deferred mode switches.
"""

import random

import pytest

from repro.sim.engine import (
    Engine,
    PRIORITY_COMPLETION,
    PRIORITY_LIMIT,
    PRIORITY_NORMAL,
    PRIORITY_SCHEDULER,
)

PRIORITIES = (
    PRIORITY_COMPLETION, PRIORITY_NORMAL, PRIORITY_LIMIT, PRIORITY_SCHEDULER,
)


def make_script(rng, n_events=400, dense_times=True):
    """A randomized stimulus: root events plus per-event reactions.

    Returns ``(roots, children, cancels)`` where ``roots`` is a list of
    ``(time, priority, id)`` scheduled up front, ``children[id]`` lists
    ``(delay, priority, child_id)`` scheduled when ``id`` fires, and
    ``cancels[id]`` lists event ids to cancel when ``id`` fires.
    """
    if dense_times:
        times = [round(rng.uniform(0.0, 50.0) * 2) / 2 for _ in range(12)]
        pick_time = lambda: rng.choice(times)
        pick_delay = lambda: rng.choice([0.0, 0.0, 0.5, 1.0, rng.uniform(0.0, 5.0)])
    else:
        pick_time = lambda: rng.uniform(0.0, 1000.0)
        pick_delay = lambda: rng.uniform(0.0, 100.0)
    n_roots = max(1, n_events // 4)
    roots = [
        (pick_time(), rng.choice(PRIORITIES), i) for i in range(n_roots)
    ]
    children: dict[int, list[tuple[float, int, int]]] = {}
    cancels: dict[int, list[int]] = {}
    next_id = n_roots
    for event_id in range(n_events):
        if next_id < n_events and rng.random() < 0.6:
            kids = []
            for _ in range(rng.randrange(1, 4)):
                if next_id >= n_events:
                    break
                kids.append((pick_delay(), rng.choice(PRIORITIES), next_id))
                next_id += 1
            children[event_id] = kids
        if rng.random() < 0.25:
            cancels[event_id] = [rng.randrange(n_events) for _ in range(2)]
    return roots, children, cancels


class Driver:
    """Replays one script on one engine, recording the dispatch log."""

    def __init__(self, engine, script):
        self.engine = engine
        self.roots, self.children, self.cancels = script
        self.handles = {}
        self.log = []

    def fire(self, event_id):
        self.log.append((event_id, self.engine.now))
        for delay, priority, child_id in self.children.get(event_id, ()):
            self.handles[child_id] = self.engine.at(
                self.engine.now + delay, self.fire, child_id, priority=priority
            )
        for target in self.cancels.get(event_id, ()):
            handle = self.handles.get(target)
            if handle is not None:
                handle.cancel()

    def schedule_roots(self):
        for time, priority, event_id in self.roots:
            self.handles[event_id] = self.engine.at(
                time, self.fire, event_id, priority=priority
            )


def run_script(engine, script, segments):
    driver = Driver(engine, script)
    driver.schedule_roots()
    checkpoints = []
    for until in segments:
        engine.run(until=until)
        checkpoints.append((engine.now, engine.pending, engine.peek_time()))
    engine.run()
    checkpoints.append(
        (engine.now, engine.pending, engine.heap_size, engine.processed)
    )
    return driver.log, checkpoints


@pytest.mark.parametrize("dense", [True, False], ids=["dense", "sparse"])
@pytest.mark.parametrize("seed", range(12))
def test_randomized_dispatch_equivalence(seed, dense):
    script = make_script(random.Random(seed), dense_times=dense)
    segments = sorted(random.Random(seed + 1000).uniform(0.0, 60.0) for _ in range(3))
    results = {}
    for mode in ("heap", "calendar", "auto"):
        log, checkpoints = run_script(Engine(queue=mode), script, segments)
        results[mode] = (log, checkpoints)
    assert results["calendar"] == results["heap"]
    assert results["auto"] == results["heap"]


def test_dispatch_log_matches_key_order():
    # the log must equal sorting the fired events by (time, priority, seq) —
    # not merely be mode-consistent.  Only strictly positive child delays:
    # every event then exists in the queue before its timestamp arrives, the
    # one regime where global key order is the right oracle (a zero-delay
    # child scheduled mid-batch can legitimately fire after an
    # earlier-fired event with a larger key).
    rng = random.Random(99)
    roots, children, cancels = make_script(rng, dense_times=True)
    children = {
        parent: [(max(delay, 0.5), priority, child) for delay, priority, child in kids]
        for parent, kids in children.items()
    }
    script = (roots, children, cancels)
    engine = Engine(queue="calendar")
    driver = Driver(engine, script)
    fired_keys = {}
    original_fire = driver.fire

    def instrumented(event_id):
        handle = driver.handles[event_id]
        fired_keys[event_id] = (handle.time, handle.priority, handle.seq)
        original_fire(event_id)

    driver.fire = instrumented
    driver.schedule_roots()
    engine.run()
    logged = [event_id for event_id, _now in driver.log]
    assert logged == sorted(logged, key=lambda i: fired_keys[i])


def test_adaptive_switches_both_ways_without_reordering():
    # a dense phase followed by a sparse phase must cross both thresholds;
    # the dispatch order still matches the pure heap
    def stimulus(engine):
        driver_log = []
        for i in range(600):
            engine.at(
                float(i % 10),
                lambda i=i: driver_log.append((i, engine.now)),
                priority=PRIORITIES[i % 4],
            )
        engine.run(until=20.0)
        for i in range(600, 1200):
            engine.at(
                20.0 + i / 7.0,
                lambda i=i: driver_log.append((i, engine.now)),
            )
        engine.run()
        return driver_log

    auto = Engine(queue="auto")
    auto_log = stimulus(auto)
    heap_log = stimulus(Engine(queue="heap"))
    assert auto_log == heap_log
    assert auto._switches >= 2
    assert auto.queue_mode == "heap"  # sparse tail switched it back


def test_mid_batch_cancellation_of_later_same_time_event():
    # an event cancels a sibling in the same timestamp batch that has not
    # fired yet — the sibling must be skipped in every mode
    for mode in ("heap", "calendar"):
        engine = Engine(queue=mode)
        log = []
        victim = engine.at(5.0, lambda: log.append("victim"), priority=PRIORITY_LIMIT)
        engine.at(5.0, lambda: (log.append("killer"), victim.cancel()))
        engine.at(5.0, lambda: log.append("bystander"), priority=PRIORITY_SCHEDULER)
        engine.run()
        assert log == ["killer", "bystander"], mode
        assert engine.pending == 0
        assert engine.heap_size == 0


def test_same_time_rescheduling_lands_in_live_batch():
    # scheduling at `now` from a callback runs within the same run() in
    # every mode, even when the batch for that timestamp is mid-drain
    for mode in ("heap", "calendar"):
        engine = Engine(queue=mode)
        log = []

        def chain(depth):
            log.append(depth)
            if depth < 5:
                engine.at(engine.now, chain, depth + 1)

        engine.at(1.0, chain, 0)
        processed = engine.run()
        assert log == list(range(6)), mode
        assert processed == 6


def test_pending_accounting_with_cancellations():
    for mode in ("heap", "calendar"):
        engine = Engine(queue=mode)
        handles = [engine.at(float(i % 5), lambda: None) for i in range(100)]
        assert engine.pending == 100
        assert engine.heap_size == 100
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending == 50, mode
        engine.run()
        assert engine.pending == 0
        assert engine.heap_size == 0
        assert engine.processed == 50


def test_forced_calendar_mode_stays_calendar():
    engine = Engine(queue="calendar")
    for i in range(1000):
        engine.at(float(i), lambda: None)  # maximally sparse
    engine.run()
    assert engine.queue_mode == "calendar"
    assert engine._switches == 0
