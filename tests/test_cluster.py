"""Tests for Node and Cluster."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.node import Node, NodeState


class TestNode:
    def test_name_format(self):
        assert Node(index=7, cores=8).name == "node007"

    def test_free_and_idle(self):
        node = Node(index=0, cores=8)
        assert node.free == 8 and node.is_idle
        node.used = 3
        assert node.free == 5 and not node.is_idle

    def test_down_node_has_no_free_cores(self):
        node = Node(index=0, cores=8, state=NodeState.DOWN)
        assert node.free == 0


class TestClusterConstruction:
    def test_homogeneous(self):
        cluster = Cluster.homogeneous(15, 8)
        assert len(cluster.nodes) == 15
        assert cluster.total_cores == 120
        assert cluster.free_cores == 120

    def test_dynamic_partition_fencing(self):
        cluster = Cluster.homogeneous(6, 8, dynamic_partition_nodes=2)
        partitions = [n.partition for n in cluster.nodes]
        assert partitions == ["batch"] * 4 + ["dynamic"] * 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            Cluster([Node(index=0, cores=8), Node(index=0, cores=8)])

    def test_invalid_homogeneous_params(self):
        with pytest.raises(ValueError):
            Cluster.homogeneous(0, 8)
        with pytest.raises(ValueError):
            Cluster.homogeneous(4, 8, dynamic_partition_nodes=5)


class TestClaimRelease:
    def test_claim_updates_usage(self, small_cluster):
        small_cluster.claim(Allocation({0: 4, 1: 8}))
        assert small_cluster.used_cores == 12
        assert small_cluster.node(0).free == 4
        assert small_cluster.node(1).free == 0

    def test_release_returns_cores(self, small_cluster):
        alloc = Allocation({0: 4})
        small_cluster.claim(alloc)
        small_cluster.release(alloc)
        assert small_cluster.used_cores == 0

    def test_oversubscription_rejected_atomically(self, small_cluster):
        small_cluster.claim(Allocation({0: 8}))
        with pytest.raises(ValueError):
            small_cluster.claim(Allocation({1: 4, 0: 1}))
        # the valid part of the failed claim must not have been applied
        assert small_cluster.node(1).used == 0

    def test_claim_unknown_node_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.claim(Allocation({99: 1}))

    def test_claim_down_node_rejected(self, small_cluster):
        small_cluster.fail_node(2)
        with pytest.raises(ValueError):
            small_cluster.claim(Allocation({2: 1}))

    def test_over_release_rejected(self, small_cluster):
        small_cluster.claim(Allocation({0: 2}))
        with pytest.raises(ValueError):
            small_cluster.release(Allocation({0: 3}))


class TestFindAllocation:
    def test_flexible_fits(self, small_cluster):
        alloc = small_cluster.find_allocation(ResourceRequest(cores=12))
        assert alloc is not None and alloc.total_cores == 12
        small_cluster.claim(alloc)  # must be claimable

    def test_flexible_prefers_loaded_nodes(self, small_cluster):
        small_cluster.claim(Allocation({0: 6}))
        alloc = small_cluster.find_allocation(ResourceRequest(cores=2))
        # anti-fragmentation: tops up the partially-used node first
        assert alloc == Allocation({0: 2})

    def test_flexible_too_big(self, small_cluster):
        assert small_cluster.find_allocation(ResourceRequest(cores=33)) is None

    def test_shaped_fits_whole_nodes(self, small_cluster):
        alloc = small_cluster.find_allocation(ResourceRequest(nodes=2, ppn=8))
        assert alloc is not None
        assert sorted(alloc.items()) == [(0, 8), (1, 8)]

    def test_shaped_respects_ppn(self, small_cluster):
        small_cluster.claim(Allocation({0: 1, 1: 1, 2: 1}))
        alloc = small_cluster.find_allocation(ResourceRequest(nodes=2, ppn=8))
        assert alloc is None  # only node 3 still has 8 free cores

    def test_shaped_prefers_emptiest(self, small_cluster):
        small_cluster.claim(Allocation({0: 4}))
        alloc = small_cluster.find_allocation(ResourceRequest(nodes=1, ppn=4))
        assert alloc is not None
        assert list(alloc.keys()) != [0]  # picks an idle node, not the loaded one

    def test_partition_filter(self):
        cluster = Cluster.homogeneous(4, 8, dynamic_partition_nodes=1)
        alloc = cluster.find_allocation(
            ResourceRequest(cores=8), partitions=("dynamic",)
        )
        assert alloc is not None and list(alloc.keys()) == [3]
        assert cluster.find_allocation(
            ResourceRequest(cores=9), partitions=("dynamic",)
        ) is None

    def test_exclude_nodes(self, small_cluster):
        alloc = small_cluster.find_allocation(
            ResourceRequest(cores=8), exclude_nodes=[0, 1, 2]
        )
        assert alloc is not None and list(alloc.keys()) == [3]

    def test_down_nodes_excluded(self, small_cluster):
        small_cluster.fail_node(0)
        small_cluster.fail_node(1)
        assert small_cluster.find_allocation(ResourceRequest(cores=24)) is None
        small_cluster.recover_node(0)
        assert small_cluster.find_allocation(ResourceRequest(cores=24)) is not None


class TestFailures:
    def test_up_cores_tracks_state(self, small_cluster):
        assert small_cluster.up_cores == 32
        small_cluster.fail_node(1)
        assert small_cluster.up_cores == 24
        small_cluster.recover_node(1)
        assert small_cluster.up_cores == 32

    def test_transitions_report_state_change(self, small_cluster):
        assert small_cluster.fail_node(1) is True
        assert small_cluster.recover_node(1) is True

    def test_repeat_fail_is_noop(self, small_cluster):
        """Failing a DOWN node must not bump ``version``.

        A spurious bump invalidates the scheduler's availability-profile
        cache and defeats its quiescence fingerprint — repeat transition
        reports (e.g. a flapping health check) would silently disable
        both optimisations.
        """
        small_cluster.fail_node(1)
        version = small_cluster.version
        assert small_cluster.fail_node(1) is False
        assert small_cluster.version == version
        assert small_cluster.up_cores == 24

    def test_repeat_recover_is_noop(self, small_cluster):
        version = small_cluster.version
        assert small_cluster.recover_node(1) is False  # already UP
        assert small_cluster.version == version
        small_cluster.fail_node(1)
        small_cluster.recover_node(1)
        version = small_cluster.version
        assert small_cluster.recover_node(1) is False
        assert small_cluster.version == version

    def test_real_transitions_still_bump_version(self, small_cluster):
        version = small_cluster.version
        small_cluster.fail_node(2)
        assert small_cluster.version == version + 1
        small_cluster.recover_node(2)
        assert small_cluster.version == version + 2


@given(
    st.lists(
        st.integers(min_value=1, max_value=8), min_size=1, max_size=20
    ),
    st.integers(min_value=1, max_value=64),
)
def test_property_find_allocation_is_claimable_and_exact(used_cores, want):
    """Whatever find_allocation returns always fits and matches the request."""
    cluster = Cluster.homogeneous(8, 8)
    # pre-load some nodes
    for i, used in enumerate(used_cores[:8]):
        cluster.claim(Allocation({i: used}))
    alloc = cluster.find_allocation(ResourceRequest(cores=want))
    if alloc is None:
        assert cluster.free_cores < want
    else:
        assert alloc.total_cores == want
        cluster.claim(alloc)  # must not raise
        assert cluster.used_cores == sum(used_cores[:8]) + want
