"""Tests for the pbs_server: job lifecycle and the dynamic request path.

These tests drive the server directly (no scheduler attached), playing the
scheduler's role by hand, so every transition can be asserted in isolation.
"""

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.rms.server import Server
from repro.sim.engine import Engine
from repro.sim.events import EventKind


@pytest.fixture
def bare():
    engine = Engine()
    cluster = Cluster.homogeneous(4, 8)
    return engine, cluster, Server(engine, cluster)


def make_job(**kw):
    defaults = dict(request=ResourceRequest(cores=8), walltime=100.0)
    defaults.update(kw)
    return Job(**defaults)


class TestSubmit:
    def test_submit_queues_and_traces(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        assert job.state is JobState.QUEUED
        assert job.submit_time == 0.0
        assert job in server.queue
        assert server.trace.count(EventKind.JOB_SUBMIT) == 1

    def test_double_submit_rejected(self, bare):
        _, _, server = bare
        job = server.submit(make_job())
        with pytest.raises(ValueError):
            server.submit(job)

    def test_submit_notifies_listener(self, bare):
        _, _, server = bare
        calls = []
        server.on_state_change = lambda: calls.append(1)
        server.submit(make_job())
        assert calls == [1]


class TestStartAndComplete:
    def test_start_claims_resources(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}))
        assert job.state is JobState.RUNNING
        assert cluster.used_cores == 8
        assert server.moms.cores_held(job) == 8
        assert job not in server.queue

    def test_start_requires_queued(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}))
        with pytest.raises(RuntimeError):
            server.start_job(job, Allocation({1: 8}))

    def test_undersized_allocation_rejected(self, bare):
        _, _, server = bare
        job = server.submit(make_job())
        with pytest.raises(RuntimeError):
            server.start_job(job, Allocation({0: 4}))

    def test_default_app_runs_full_walltime(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job(walltime=50.0))
        server.start_job(job, Allocation({0: 8}))
        engine.run()
        assert job.state is JobState.COMPLETED
        assert job.end_time == 50.0
        assert cluster.used_cores == 0

    def test_walltime_abort_kills_overrunning_app(self, bare):
        engine, cluster, server = bare

        class Immortal:
            def launch(self, ctx):
                pass  # never finishes

        job = server.submit(make_job(walltime=30.0))
        server._apps[job.job_id] = Immortal()
        server.start_job(job, Allocation({0: 8}))
        engine.run()
        assert job.state is JobState.ABORTED
        assert job.end_time == 30.0
        assert server.trace.count(EventKind.JOB_ABORT) == 1
        assert cluster.used_cores == 0

    def test_completion_exactly_at_walltime_is_normal(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job(walltime=100.0))
        server.start_job(job, Allocation({0: 8}))  # default app: walltime run
        engine.run()
        assert job.state is JobState.COMPLETED

    def test_backfilled_flag_recorded(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}), backfilled=True)
        assert job.backfilled
        assert server.trace.count(EventKind.BACKFILL_START) == 1
        assert server.trace.count(EventKind.JOB_START) == 0

    def test_abort_job(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}))
        server.abort_job(job, "node failure")
        assert job.state is JobState.ABORTED
        assert cluster.used_cores == 0

    def test_cancel_queued(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.cancel_queued(job)
        assert job.state is JobState.ABORTED
        assert job not in server.queue

    def test_cancel_running_rejected(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}))
        with pytest.raises(RuntimeError):
            server.cancel_queued(job)


class TestDynamicPath:
    def _running_evolving(self, server):
        job = server.submit(
            make_job(request=ResourceRequest(cores=4), flexibility=JobFlexibility.EVOLVING)
        )
        server.start_job(job, Allocation({0: 4}))
        return job

    def test_dyn_request_enters_dynqueued(self, bare):
        _, _, server = bare
        job = self._running_evolving(server)
        server.dyn_request(job, ResourceRequest(cores=4), lambda g: None)
        assert job.state is JobState.DYNQUEUED
        assert len(server.dyn_queue) == 1
        assert server.trace.count(EventKind.DYN_REQUEST) == 1

    def test_dyn_request_requires_running(self, bare):
        _, _, server = bare
        job = server.submit(make_job())
        with pytest.raises(RuntimeError):
            server.dyn_request(job, ResourceRequest(cores=4), lambda g: None)

    def test_grant_expands_allocation(self, bare):
        engine, cluster, server = bare
        job = self._running_evolving(server)
        answers = []
        server.dyn_request(job, ResourceRequest(cores=4), answers.append)
        dreq = server.dyn_queue[0]
        grant = Allocation({1: 4})
        server.grant_dynamic(dreq, grant)
        assert job.state is JobState.RUNNING
        assert job.allocation.total_cores == 8
        assert job.dyn_granted == 1
        assert answers == [grant]
        assert cluster.used_cores == 8
        assert server.moms.cores_held(job) == 8
        assert not server.dyn_queue

    def test_reject_keeps_allocation(self, bare):
        engine, cluster, server = bare
        job = self._running_evolving(server)
        answers = []
        server.dyn_request(job, ResourceRequest(cores=4), answers.append)
        server.reject_dynamic(server.dyn_queue[0], "testing")
        assert job.state is JobState.RUNNING
        assert job.allocation.total_cores == 4
        assert job.dyn_rejected == 1
        assert answers == [None]

    def test_grant_unpended_request_rejected(self, bare):
        engine, cluster, server = bare
        job = self._running_evolving(server)
        server.dyn_request(job, ResourceRequest(cores=4), lambda g: None)
        dreq = server.dyn_queue[0]
        server.reject_dynamic(dreq)
        with pytest.raises(RuntimeError):
            server.grant_dynamic(dreq, Allocation({1: 4}))

    def test_dyn_free_releases_subset(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job(request=ResourceRequest(cores=8)))
        server.start_job(job, Allocation({0: 4, 1: 4}))
        server.dyn_free(job, Allocation({1: 4}))
        assert job.allocation == Allocation({0: 4})
        assert cluster.used_cores == 4
        assert server.trace.count(EventKind.DYN_RELEASE) == 1

    def test_pending_request_dies_with_job(self, bare):
        engine, cluster, server = bare
        job = self._running_evolving(server)
        server.dyn_request(job, ResourceRequest(cores=4), lambda g: None)
        server.abort_job(job, "killed")
        assert not server.dyn_queue


class TestPreemption:
    def test_preempt_requeues_and_releases(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}), backfilled=True)
        engine.run(until=10.0)
        server.preempt_job(job)
        assert job.state is JobState.QUEUED
        assert job.allocation is None
        assert job.start_time is None
        assert cluster.used_cores == 0
        assert job in server.queue
        assert job.metadata["preempt_count"] == 1

    def test_preempted_job_can_restart(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job(walltime=40.0))
        server.start_job(job, Allocation({0: 8}))
        engine.run(until=10.0)
        server.preempt_job(job)
        server.start_job(job, Allocation({1: 8}))
        engine.run()
        # restarted from scratch at t=10: full walltime run ends at 50
        assert job.state is JobState.COMPLETED
        assert job.end_time == 50.0

    def test_preempting_inactive_rejected(self, bare):
        _, _, server = bare
        job = server.submit(make_job())
        with pytest.raises(RuntimeError):
            server.preempt_job(job)


class TestMerge:
    def test_merge_transfers_allocation(self, bare):
        engine, cluster, server = bare
        parent = server.submit(make_job(request=ResourceRequest(cores=8)))
        server.start_job(parent, Allocation({0: 8}))
        stub = server.submit(make_job(request=ResourceRequest(cores=4), walltime=50.0))
        server.start_job(stub, Allocation({1: 4}))

        class Hold:
            def launch(self, ctx):
                pass

        transferred = server.merge_allocations(stub, parent)
        assert transferred == Allocation({1: 4})
        assert parent.allocation.total_cores == 12
        assert stub.state is JobState.COMPLETED
        assert parent.dyn_granted == 1
        assert cluster.used_cores == 12
        assert server.moms.cores_held(parent) == 12
        assert server.moms.cores_held(stub) == 0

    def test_merge_into_self_rejected(self, bare):
        engine, cluster, server = bare
        job = server.submit(make_job())
        server.start_job(job, Allocation({0: 8}))
        with pytest.raises(ValueError):
            server.merge_allocations(job, job)

    def test_merge_requires_both_active(self, bare):
        engine, cluster, server = bare
        parent = server.submit(make_job())
        stub = server.submit(make_job())
        with pytest.raises(RuntimeError):
            server.merge_allocations(stub, parent)
