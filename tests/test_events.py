"""Tests for the trace log."""

from repro.sim.events import EventKind, TraceLog


class TestTraceLog:
    def test_record_and_len(self):
        log = TraceLog()
        log.record(1.0, EventKind.JOB_SUBMIT, job_id="j1")
        log.record(2.0, EventKind.JOB_START, job_id="j1")
        assert len(log) == 2

    def test_record_returns_event(self):
        log = TraceLog()
        ev = log.record(1.5, EventKind.DYN_GRANT, job_id="j1", cores=4)
        assert ev.time == 1.5
        assert ev.kind is EventKind.DYN_GRANT
        assert ev.payload == {"job_id": "j1", "cores": 4}

    def test_iteration_preserves_order(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), EventKind.SCHED_ITERATION, n=i)
        assert [e.payload["n"] for e in log] == list(range(5))

    def test_of_kind(self):
        log = TraceLog()
        log.record(1.0, EventKind.JOB_SUBMIT, job_id="a")
        log.record(2.0, EventKind.JOB_START, job_id="a")
        log.record(3.0, EventKind.JOB_SUBMIT, job_id="b")
        submits = log.of_kind(EventKind.JOB_SUBMIT)
        assert [e.payload["job_id"] for e in submits] == ["a", "b"]

    def test_for_job(self):
        log = TraceLog()
        log.record(1.0, EventKind.JOB_SUBMIT, job_id="a")
        log.record(2.0, EventKind.JOB_SUBMIT, job_id="b")
        log.record(3.0, EventKind.JOB_END, job_id="a")
        assert len(log.for_job("a")) == 2
        assert len(log.for_job("missing")) == 0

    def test_count(self):
        log = TraceLog()
        for _ in range(3):
            log.record(0.0, EventKind.DYN_REJECT, job_id="x")
        assert log.count(EventKind.DYN_REJECT) == 3
        assert log.count(EventKind.DYN_GRANT) == 0

    def test_getitem(self):
        log = TraceLog()
        log.record(0.0, EventKind.NODE_FAIL, node=3)
        assert log[0].payload["node"] == 3

    def test_clear(self):
        log = TraceLog()
        log.record(0.0, EventKind.JOB_END, job_id="x")
        log.clear()
        assert len(log) == 0

    def test_repr_is_compact(self):
        log = TraceLog()
        ev = log.record(1.25, EventKind.JOB_START, job_id="j", cores=8)
        text = repr(ev)
        assert "job_start" in text
        assert "@1.25" in text
