"""Tests for the DFS ledger: policy evaluation, charging, decay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import DFSConfig, DFSPolicy, PrincipalLimits
from repro.maui.fairness import DFSLedger, Victim


def make_job(user="victim", group="vgroup", **kw):
    defaults = dict(request=ResourceRequest(cores=4), walltime=100.0)
    defaults.update(kw)
    job = Job(user=user, group=group, **defaults)
    job.submit_time = 0.0
    return job


def ledger(policy=DFSPolicy.TARGET_DELAY, **kw) -> DFSLedger:
    return DFSLedger(DFSConfig(policy=policy, **kw))


class TestPolicyNone:
    def test_everything_allowed(self):
        led = ledger(DFSPolicy.NONE)
        victims = [Victim(make_job(), 1e9)]
        assert led.evaluate(victims, "evil", 0.0)

    def test_commit_charges_nothing(self):
        led = ledger(DFSPolicy.NONE)
        job = make_job()
        assert led.commit([Victim(job, 500.0)], "evil") == 0.0
        assert job.accrued_delay == 0.0


class TestPermVeto:
    def test_user_perm_denies(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            users={"victim": PrincipalLimits(dyn_delay_perm=False)},
        )
        decision = led.evaluate([Victim(make_job(), 10.0)], "evil", 0.0)
        assert not decision
        assert "DFSDynDelayPerm" in decision.reason

    def test_group_perm_denies(self):
        led = ledger(
            DFSPolicy.SINGLE_JOB_DELAY,
            groups={"vgroup": PrincipalLimits(dyn_delay_perm=False)},
        )
        assert not led.evaluate([Victim(make_job(), 10.0)], "evil", 0.0)

    def test_zero_delay_not_vetoed(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            users={"victim": PrincipalLimits(dyn_delay_perm=False)},
        )
        assert led.evaluate([Victim(make_job(), 0.0)], "evil", 0.0)


class TestSameUserExemption:
    def test_own_jobs_do_not_count(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            default_user=PrincipalLimits(target_delay_time=1.0),
        )
        victim = Victim(make_job(user="selfish"), 1000.0)
        assert led.evaluate([victim], "selfish", 0.0)
        led.commit([victim], "selfish")
        assert victim.job.accrued_delay == 0.0

    def test_foreign_jobs_do_count(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            default_user=PrincipalLimits(target_delay_time=1.0),
        )
        assert not led.evaluate([Victim(make_job(user="other"), 1000.0)], "selfish", 0.0)


class TestSingleJobDelay:
    def _led(self, cap):
        return ledger(
            DFSPolicy.SINGLE_JOB_DELAY,
            default_user=PrincipalLimits(single_delay_time=cap),
        )

    def test_within_cap_allowed(self):
        assert self._led(100.0).evaluate([Victim(make_job(), 99.0)], "evil", 0.0)

    def test_beyond_cap_denied(self):
        assert not self._led(100.0).evaluate([Victim(make_job(), 101.0)], "evil", 0.0)

    def test_accrued_delay_counts(self):
        led = self._led(100.0)
        job = make_job()
        job.accrued_delay = 60.0
        assert not led.evaluate([Victim(job, 50.0)], "evil", 0.0)
        assert led.evaluate([Victim(job, 30.0)], "evil", 0.0)

    def test_most_restrictive_of_user_and_group(self):
        led = ledger(
            DFSPolicy.SINGLE_JOB_DELAY,
            users={"victim": PrincipalLimits(single_delay_time=500.0)},
            groups={"vgroup": PrincipalLimits(single_delay_time=100.0)},
        )
        assert not led.evaluate([Victim(make_job(), 200.0)], "evil", 0.0)
        assert led.evaluate([Victim(make_job(), 50.0)], "evil", 0.0)

    def test_target_not_checked_under_single_policy(self):
        led = ledger(
            DFSPolicy.SINGLE_JOB_DELAY,
            default_user=PrincipalLimits(single_delay_time=1000.0, target_delay_time=1.0),
        )
        assert led.evaluate([Victim(make_job(), 500.0)], "evil", 0.0)


class TestTargetDelay:
    def _led(self, cap, **kw):
        return ledger(
            DFSPolicy.TARGET_DELAY,
            default_user=PrincipalLimits(target_delay_time=cap),
            **kw,
        )

    def test_cumulative_across_grants(self):
        led = self._led(100.0)
        job = make_job()
        v1 = [Victim(job, 60.0)]
        assert led.evaluate(v1, "evil", 0.0)
        led.commit(v1, "evil")
        v2 = [Victim(make_job(), 60.0)]  # same user "victim"
        assert not led.evaluate(v2, "evil", 0.0)

    def test_sum_within_single_grant(self):
        led = self._led(100.0)
        victims = [Victim(make_job(), 60.0), Victim(make_job(), 60.0)]
        assert not led.evaluate(victims, "evil", 0.0)

    def test_distinct_users_tracked_separately(self):
        led = self._led(100.0)
        victims = [
            Victim(make_job(user="a", group="ga"), 80.0),
            Victim(make_job(user="b", group="gb"), 80.0),
        ]
        assert led.evaluate(victims, "evil", 0.0)

    def test_group_cap_aggregates_users(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            groups={"vgroup": PrincipalLimits(target_delay_time=100.0)},
        )
        victims = [
            Victim(make_job(user="a"), 60.0),
            Victim(make_job(user="b"), 60.0),
        ]
        # both users are in vgroup: 120 > 100 at group level
        assert not led.evaluate(victims, "evil", 0.0)

    def test_single_not_checked_under_target_policy(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            default_user=PrincipalLimits(target_delay_time=1000.0, single_delay_time=1.0),
        )
        assert led.evaluate([Victim(make_job(), 500.0)], "evil", 0.0)


class TestCommit:
    def test_commit_updates_job_and_ledger(self):
        led = ledger(DFSPolicy.TARGET_DELAY)
        job = make_job()
        total = led.commit([Victim(job, 42.0)], "evil")
        assert total == 42.0
        assert job.accrued_delay == 42.0
        assert led.cumulative_delay("user", "victim") == 42.0
        assert led.cumulative_delay("group", "vgroup") == 0.0  # group unconfigured

    def test_commit_charges_configured_group(self):
        led = ledger(
            DFSPolicy.TARGET_DELAY,
            groups={"vgroup": PrincipalLimits(target_delay_time=1000.0)},
        )
        led.commit([Victim(make_job(), 42.0)], "evil")
        assert led.cumulative_delay("group", "vgroup") == 42.0

    def test_commit_skips_zero_delays(self):
        led = ledger(DFSPolicy.TARGET_DELAY)
        job = make_job()
        led.commit([Victim(job, 0.0)], "evil")
        assert job.accrued_delay == 0.0


class TestDecay:
    def test_roll_applies_decay(self):
        led = DFSLedger(DFSConfig(policy=DFSPolicy.TARGET_DELAY, interval=100.0, decay=0.2))
        led.commit([Victim(make_job(), 3600.0)], "evil")
        rolled = led.roll(100.0)
        assert rolled == 1
        # the paper's example: 3600s decays to 720s
        assert led.cumulative_delay("user", "victim") == pytest.approx(720.0)

    def test_zero_decay_resets(self):
        led = DFSLedger(DFSConfig(policy=DFSPolicy.TARGET_DELAY, interval=100.0, decay=0.0))
        led.commit([Victim(make_job(), 500.0)], "evil")
        led.roll(100.0)
        assert led.cumulative_delay("user", "victim") == 0.0

    def test_multiple_intervals_compound(self):
        led = DFSLedger(DFSConfig(policy=DFSPolicy.TARGET_DELAY, interval=100.0, decay=0.5))
        led.commit([Victim(make_job(), 800.0)], "evil")
        led.roll(350.0)  # three intervals
        assert led.cumulative_delay("user", "victim") == pytest.approx(100.0)
        assert led.interval_start == 300.0

    def test_headroom_after_decay(self):
        # paper: cap 4800, accumulated 3600, decay 0.2 -> 4080 available next
        led = DFSLedger(
            DFSConfig(
                policy=DFSPolicy.TARGET_DELAY,
                interval=100.0,
                decay=0.2,
                default_user=PrincipalLimits(target_delay_time=4800.0),
            )
        )
        led.commit([Victim(make_job(), 3600.0)], "evil")
        led.roll(100.0)
        assert led.evaluate([Victim(make_job(), 4080.0)], "evil", 100.0)
        assert not led.evaluate([Victim(make_job(), 4081.0)], "evil", 100.0)

    def test_no_roll_before_boundary(self):
        led = DFSLedger(DFSConfig(policy=DFSPolicy.TARGET_DELAY, interval=100.0))
        assert led.roll(99.9) == 0


class TestVictim:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Victim(make_job(), -1.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=10),
    st.floats(min_value=1.0, max_value=5000.0),
)
def test_property_target_cap_never_exceeded(delays, cap):
    """Grants allowed one at a time never push a user past its cap."""
    led = DFSLedger(
        DFSConfig(
            policy=DFSPolicy.TARGET_DELAY,
            default_user=PrincipalLimits(target_delay_time=cap),
        )
    )
    for delay in delays:
        victims = [Victim(make_job(), delay)]
        if led.evaluate(victims, "evil", 0.0):
            led.commit(victims, "evil")
    assert led.cumulative_delay("user", "victim") <= cap + 1e-6
