"""Tests for the process-pool experiment engine (``repro.exec``)."""

import os

import pytest

from repro.exec import ExecProgress, map_specs, resolve_workers
from repro.obs.registry import MetricsRegistry


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("spec 3 exploded")
    return x


class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers(-2)


class TestMapSpecsSerial:
    def test_results_in_spec_order(self):
        assert map_specs(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_specs(self):
        assert map_specs(_square, []) == []

    def test_serial_allows_closures(self):
        # the serial path never pickles, so local callables are fine
        seen = []
        assert map_specs(lambda x: seen.append(x) or x, [1, 2]) == [1, 2]
        assert seen == [1, 2]

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="spec 3 exploded"):
            map_specs(_fail_on_three, [1, 2, 3, 4])


class TestMapSpecsParallel:
    def test_results_in_spec_order(self):
        assert map_specs(_square, [5, 3, 1, 4], workers=2) == [25, 9, 1, 16]

    def test_matches_serial(self):
        specs = list(range(17))
        assert map_specs(_square, specs, workers=3) == map_specs(_square, specs)

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="spec 3 exploded"):
            map_specs(_fail_on_three, [1, 2, 3, 4], workers=2)

    def test_single_spec_stays_in_process(self):
        # len(specs) <= 1 short-circuits to the serial path even with workers
        seen = []
        assert map_specs(lambda x: seen.append(x) or -x, [9], workers=4) == [-9]
        assert seen == [9]


class TestProgress:
    def _gauges(self, registry, label):
        return {
            name: registry.gauge(f"repro_exec_{name}", "", {"label": label}).value
            for name in (
                "specs_total", "specs_completed", "workers",
                "elapsed_seconds", "eta_seconds",
            )
        }

    def test_gauges_track_completion(self):
        registry = MetricsRegistry()
        map_specs(_square, [1, 2, 3], telemetry=registry, label="unit")
        gauges = self._gauges(registry, "unit")
        assert gauges["specs_total"] == 3
        assert gauges["specs_completed"] == 3
        assert gauges["workers"] == 1
        assert gauges["eta_seconds"] == 0.0

    def test_accepts_telemetry_facade(self):
        from repro.obs import Telemetry

        telemetry = Telemetry(sample_interval=None)
        map_specs(_square, [1, 2], telemetry=telemetry, label="facade")
        total = telemetry.registry.gauge(
            "repro_exec_specs_total", "", {"label": "facade"}
        )
        assert total.value == 2

    def test_advance_updates_eta(self):
        registry = MetricsRegistry()
        progress = ExecProgress(registry, "eta", total=4, workers=1)
        progress.advance()
        assert progress.completed == 1
        eta = registry.gauge("repro_exec_eta_seconds", "", {"label": "eta"})
        assert eta.value >= 0.0
