"""Tests for ResourceRequest and Allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.allocation import Allocation, ResourceRequest


class TestResourceRequest:
    def test_flexible_cores(self):
        req = ResourceRequest(cores=12)
        assert not req.is_shaped
        assert req.total_cores == 12
        assert str(req) == "procs=12"

    def test_shaped_nodes_ppn(self):
        req = ResourceRequest(nodes=3, ppn=8)
        assert req.is_shaped
        assert req.total_cores == 24
        assert str(req) == "nodes=3:ppn=8"

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequest(cores=0)

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequest(cores=-4)

    def test_mixing_forms_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequest(cores=4, nodes=1, ppn=4)

    def test_nodes_without_ppn_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequest(nodes=2)

    def test_ppn_without_nodes_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequest(ppn=8)


class TestAllocation:
    def test_mapping_protocol(self):
        alloc = Allocation({0: 4, 2: 8})
        assert alloc[0] == 4
        assert alloc[1] == 0
        assert 2 in alloc and 1 not in alloc
        assert len(alloc) == 2
        assert list(alloc) == [0, 2]

    def test_total_cores(self):
        assert Allocation({0: 4, 1: 8}).total_cores == 12

    def test_zero_entries_dropped(self):
        alloc = Allocation({0: 4, 1: 0})
        assert 1 not in alloc
        assert len(alloc) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Allocation({0: -1})

    def test_empty(self):
        assert Allocation.empty().is_empty
        assert Allocation.empty().total_cores == 0

    def test_add(self):
        combined = Allocation({0: 4}) + Allocation({0: 2, 1: 8})
        assert combined[0] == 6 and combined[1] == 8

    def test_sub(self):
        rest = Allocation({0: 6, 1: 8}) - Allocation({0: 2})
        assert rest[0] == 4 and rest[1] == 8

    def test_sub_to_zero_removes_node(self):
        rest = Allocation({0: 4, 1: 2}) - Allocation({1: 2})
        assert 1 not in rest

    def test_over_subtraction_rejected(self):
        with pytest.raises(ValueError):
            Allocation({0: 2}) - Allocation({0: 3})

    def test_sub_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Allocation({0: 2}) - Allocation({5: 1})

    def test_equality_and_hash(self):
        a = Allocation({0: 4, 1: 2})
        b = Allocation({1: 2, 0: 4})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Allocation({0: 4})

    def test_node_indices_sorted(self):
        assert Allocation({5: 1, 2: 1, 9: 1}).node_indices == (2, 5, 9)

    def test_hostlist_torque_style(self):
        alloc = Allocation({7: 2})
        assert alloc.hostlist() == ["node007/0", "node007/1"]

    def test_subset_valid(self):
        alloc = Allocation({0: 4, 1: 4})
        sub = alloc.subset({1: 2})
        assert sub == Allocation({1: 2})

    def test_subset_not_contained_rejected(self):
        with pytest.raises(ValueError):
            Allocation({0: 4}).subset({0: 5})

    def test_immutability(self):
        alloc = Allocation({0: 4})
        with pytest.raises(AttributeError):
            alloc.new_attr = 1  # __slots__ blocks it


node_core_maps = st.dictionaries(
    st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=16), max_size=8
)


@given(node_core_maps, node_core_maps)
def test_property_add_then_sub_roundtrip(a_map, b_map):
    a, b = Allocation(a_map), Allocation(b_map)
    assert (a + b) - b == a


@given(node_core_maps, node_core_maps)
def test_property_add_commutative_total(a_map, b_map):
    a, b = Allocation(a_map), Allocation(b_map)
    assert (a + b).total_cores == a.total_cores + b.total_cores
    assert a + b == b + a


@given(node_core_maps)
def test_property_hostlist_length_matches_total(core_map):
    alloc = Allocation(core_map)
    assert len(alloc.hostlist()) == alloc.total_cores
