"""Tests for the availability profile (reservations' core data structure)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile, NoFitError


def make_profile(free=8, nodes=4, now=0.0):
    indices = list(range(nodes))
    return AvailabilityProfile(
        indices, {i: free for i in indices}, now, capacity={i: 8 for i in indices}
    )


class TestConstruction:
    def test_initial_free(self):
        prof = make_profile()
        assert prof.free_at(0.0) == {0: 8, 1: 8, 2: 8, 3: 8}

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityProfile([0], {0: -1}, 0.0)

    def test_query_before_start_rejected(self):
        prof = make_profile(now=100.0)
        with pytest.raises(ValueError):
            prof.free_at(50.0)


class TestClaimsAndReleases:
    def test_claim_reduces_window(self):
        prof = make_profile()
        prof.add_claim(10.0, 20.0, Allocation({0: 8}))
        assert prof.free_at(5.0)[0] == 8
        assert prof.free_at(10.0)[0] == 0
        assert prof.free_at(19.9)[0] == 0
        assert prof.free_at(20.0)[0] == 8

    def test_claim_to_infinity(self):
        prof = make_profile()
        prof.add_claim(5.0, math.inf, Allocation({1: 4}))
        assert prof.free_at(1e9)[1] == 4

    def test_release_adds_from_time(self):
        prof = make_profile(free=0)
        prof.add_release(30.0, Allocation({2: 8}))
        assert prof.free_at(29.0)[2] == 0
        assert prof.free_at(30.0)[2] == 8

    def test_release_beyond_capacity_rejected(self):
        prof = make_profile(free=8)
        with pytest.raises(ValueError):
            prof.add_release(10.0, Allocation({0: 1}))  # 8 + 1 > capacity

    def test_oversubscribing_claim_rejected_and_rolled_back(self):
        prof = make_profile()
        prof.add_claim(0.0, 10.0, Allocation({0: 8}))
        with pytest.raises(ValueError):
            prof.add_claim(5.0, 15.0, Allocation({0: 1}))
        # the failed claim must not leave partial subtraction behind
        assert prof.free_at(12.0)[0] == 8

    def test_empty_interval_rejected(self):
        prof = make_profile()
        with pytest.raises(ValueError):
            prof.add_claim(10.0, 10.0, Allocation({0: 1}))

    def test_unknown_node_rejected(self):
        prof = make_profile()
        with pytest.raises(ValueError):
            prof.add_claim(0.0, 1.0, Allocation({42: 1}))

    def test_copy_is_independent(self):
        prof = make_profile()
        clone = prof.copy()
        clone.add_claim(0.0, 10.0, Allocation({0: 8}))
        assert prof.free_at(5.0)[0] == 8
        assert clone.free_at(5.0)[0] == 0


class TestFitsAt:
    def test_fits_now(self):
        prof = make_profile()
        alloc = prof.fits_at(0.0, 100.0, ResourceRequest(cores=32))
        assert alloc is not None and alloc.total_cores == 32

    def test_does_not_fit_through_window(self):
        prof = make_profile()
        prof.add_claim(50.0, 60.0, Allocation({0: 8, 1: 8, 2: 8, 3: 8}))
        assert prof.fits_at(0.0, 100.0, ResourceRequest(cores=1)) is None
        assert prof.fits_at(0.0, 50.0, ResourceRequest(cores=32)) is not None

    def test_shaped_fit(self):
        prof = make_profile()
        prof.add_claim(0.0, 100.0, Allocation({0: 4, 1: 4, 2: 4}))
        alloc = prof.fits_at(0.0, 50.0, ResourceRequest(nodes=2, ppn=8))
        assert alloc is None  # only node 3 has 8 free
        alloc = prof.fits_at(0.0, 50.0, ResourceRequest(nodes=1, ppn=8))
        assert alloc is not None and alloc[3] == 8

    def test_infinite_duration_window(self):
        prof = make_profile()
        prof.add_claim(5.0, math.inf, Allocation({0: 8, 1: 8, 2: 8, 3: 8}))
        assert prof.fits_at(0.0, math.inf, ResourceRequest(cores=1)) is None


class TestEarliestFit:
    def test_immediate(self):
        prof = make_profile()
        t, alloc = prof.earliest_fit(ResourceRequest(cores=8), 10.0)
        assert t == 0.0 and alloc.total_cores == 8

    def test_waits_for_release(self):
        prof = make_profile(free=0)
        prof.add_release(40.0, Allocation({0: 8}))
        t, alloc = prof.earliest_fit(ResourceRequest(cores=8), 10.0)
        assert t == 40.0 and alloc[0] == 8

    def test_respects_after(self):
        prof = make_profile()
        t, _ = prof.earliest_fit(ResourceRequest(cores=8), 10.0, after=25.0)
        assert t == 25.0

    def test_skips_busy_window(self):
        prof = make_profile()
        # everything busy between 10 and 30
        prof.add_claim(10.0, 30.0, Allocation({i: 8 for i in range(4)}))
        t, _ = prof.earliest_fit(ResourceRequest(cores=4), 15.0, after=0.0)
        # cannot start in (0, 10) because the 15s-window would cross the claim
        assert t == 30.0

    def test_fits_into_gap_exactly(self):
        prof = make_profile()
        prof.add_claim(10.0, 30.0, Allocation({i: 8 for i in range(4)}))
        t, _ = prof.earliest_fit(ResourceRequest(cores=4), 10.0, after=0.0)
        assert t == 0.0  # the [0, 10) gap is exactly long enough

    def test_never_fits_raises(self):
        prof = make_profile()
        with pytest.raises(NoFitError):
            prof.earliest_fit(ResourceRequest(cores=33), 10.0)

    def test_shaped_earliest(self):
        prof = make_profile()
        prof.add_claim(0.0, 20.0, Allocation({0: 1, 1: 1, 2: 1, 3: 1}))
        t, alloc = prof.earliest_fit(ResourceRequest(nodes=4, ppn=8), 5.0)
        assert t == 20.0
        assert alloc.total_cores == 32


claims_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),          # node
        st.integers(min_value=1, max_value=4),          # cores
        st.floats(min_value=0.0, max_value=100.0),      # start
        st.floats(min_value=0.1, max_value=100.0),      # duration
    ),
    max_size=12,
)


@settings(max_examples=60)
@given(claims_strategy, st.integers(min_value=1, max_value=32), st.floats(min_value=0.1, max_value=50.0))
def test_property_earliest_fit_result_actually_fits(claims, cores, duration):
    """earliest_fit's returned slot must satisfy fits_at at that time."""
    prof = make_profile()
    for node, c, start, dur in claims:
        try:
            prof.add_claim(start, start + dur, Allocation({node: c}))
        except ValueError:
            pass  # oversubscribed attempt: legitimately rejected
    try:
        t, alloc = prof.earliest_fit(ResourceRequest(cores=cores), duration)
    except NoFitError:
        assert cores > 32
        return
    assert alloc.total_cores == cores
    # and the window really is free: claiming it must not raise
    prof.add_claim(t, t + duration, alloc)


@settings(max_examples=60)
@given(claims_strategy)
def test_property_free_never_negative_nor_above_capacity(claims):
    prof = make_profile()
    applied = []
    for node, c, start, dur in claims:
        try:
            prof.add_claim(start, start + dur, Allocation({node: c}))
            applied.append((node, c, start, dur))
        except ValueError:
            pass
    for bp in prof.breakpoints:
        free = prof.free_at(bp)
        assert all(0 <= f <= 8 for f in free.values())


@settings(max_examples=40)
@given(claims_strategy, st.floats(min_value=0.0, max_value=200.0))
def test_property_window_min_consistent_with_point_queries(claims, probe):
    """free_at at any time inside a window is >= the window minimum."""
    prof = make_profile()
    for node, c, start, dur in claims:
        try:
            prof.add_claim(start, start + dur, Allocation({node: c}))
        except ValueError:
            pass
    window_min = prof._window_min(0.0, 200.0)
    free = prof.free_at(probe)
    for pos, idx in enumerate(sorted(free)):
        assert free[idx] >= window_min[pos]


# ----------------------------------------------------------------------
# brute-force cross-validation: the profile's earliest_fit must agree with
# a naive reference that scans a discretised timeline
# ----------------------------------------------------------------------


def _naive_earliest_fit(claims, cores, duration, nodes=4, capacity=8, horizon=400.0):
    """Reference implementation: test every candidate time on a fine grid."""

    def free_at(t):
        free = [capacity] * nodes
        for node, c, start, dur in claims:
            if start <= t < start + dur:
                free[node] -= c
        return free

    # candidate starts: 0 plus all claim boundaries (the only change points)
    candidates = sorted({0.0} | {s for _, _, s, _ in claims} | {s + d for _, _, s, d in claims})
    for t in candidates:
        if t > horizon:
            break
        # a job holds a FIXED core set for its whole duration, so a node
        # contributes only the cores free at EVERY instant of the window
        probes = [t] + [b for b in candidates if t < b < t + duration]
        per_node_min = [
            min(free_at(p)[n] for p in probes) for n in range(nodes)
        ]
        if sum(per_node_min) >= cores:
            return t
    return None


@settings(max_examples=80)
@given(claims_strategy, st.integers(min_value=1, max_value=32),
       st.floats(min_value=0.5, max_value=60.0))
def test_property_earliest_fit_matches_brute_force(claims, cores, duration):
    prof = make_profile()
    applied = []
    for node, c, start, dur in claims:
        try:
            prof.add_claim(start, start + dur, Allocation({node: c}))
            applied.append((node, c, start, dur))
        except ValueError:
            pass
    try:
        t, _ = prof.earliest_fit(ResourceRequest(cores=cores), duration)
    except NoFitError:
        t = None
    expected = _naive_earliest_fit(applied, cores, duration)
    assert t == expected
