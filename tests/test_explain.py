"""Tests for scheduler.explain (the checkjob-style diagnostic)."""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def job(cores, walltime=100.0, user="u", **kw):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user, **kw)


class TestExplain:
    def test_running_job(self, system):
        j = system.submit(job(8), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        info = system.scheduler.explain(j)
        assert info["state"] == "running"
        assert info["planned_start"] == 0.0

    def test_blocked_by_resources_with_planned_start(self, system):
        a = system.submit(job(32, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(32, walltime=100.0), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        info = system.scheduler.explain(b)
        assert info["state"] == "queued"
        assert info["blocked_by"] == "resources"
        assert info["planned_start"] == pytest.approx(300.0)
        assert info["queue_position"] == 0

    def test_blocked_by_dependency(self, system):
        a = system.submit(job(4, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(4, depends_on=a.job_id), FixedRuntimeApp(50.0))
        system.run(until=0.0)
        info = system.scheduler.explain(b)
        assert info["blocked_by"] == f"dependency on {a.job_id}"

    def test_blocked_by_running_throttle_names_limit(self):
        system = BatchSystem(4, 8, MauiConfig(max_running_jobs_per_user=1))
        a = system.submit(job(4, user="hog"), FixedRuntimeApp(300.0))
        b = system.submit(job(4, user="hog"), FixedRuntimeApp(300.0))
        system.run(until=0.0)
        info = system.scheduler.explain(b)
        assert info["blocked_by"] == "throttled by max_running_jobs_per_user=1"

    def test_blocked_by_eligible_throttle_names_limit(self):
        system = BatchSystem(4, 8, MauiConfig(max_eligible_jobs_per_user=1))
        # three 32-core jobs: the first runs, the second is eligible (and
        # blocked by resources), the third is over the eligibility cap
        a = system.submit(job(32, walltime=300.0, user="hog"), FixedRuntimeApp(300.0))
        b = system.submit(job(32, walltime=300.0, user="hog"), FixedRuntimeApp(300.0))
        c = system.submit(job(32, walltime=300.0, user="hog"), FixedRuntimeApp(300.0))
        system.run(until=0.0)
        info = system.scheduler.explain(c)
        assert info["blocked_by"] == "throttled by max_eligible_jobs_per_user=1"

    def test_blocked_by_user_hold(self, system):
        a = system.submit(job(4), FixedRuntimeApp(50.0))
        system.server.hold_job(a, kind="user")
        system.run(until=0.0)
        info = system.scheduler.explain(a)
        assert info["state"] == "queued"
        assert info["blocked_by"] == "user hold"

    def test_blocked_by_system_hold_then_released(self, system):
        a = system.submit(job(4), FixedRuntimeApp(50.0))
        system.server.hold_job(a, kind="system")
        system.run(until=0.0)
        assert system.scheduler.explain(a)["blocked_by"] == "system hold"
        system.server.release_hold(a)
        system.run(until=1.0)
        assert a.state.value == "running"

    def test_impossible_request(self, system):
        j = system.submit(job(64), FixedRuntimeApp(100.0))  # 32-core machine
        system.run(until=0.0)
        info = system.scheduler.explain(j)
        assert info["blocked_by"] == "request can never fit"

    def test_finished_job(self, system):
        j = system.submit(job(8), FixedRuntimeApp(50.0))
        system.run()
        info = system.scheduler.explain(j)
        assert info["state"] == "completed"

    def test_no_side_effects(self, system):
        a = system.submit(job(32, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(32, walltime=100.0), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        before = system.scheduler.stats["reservations_created"]
        system.scheduler.explain(b)
        assert system.scheduler.stats["reservations_created"] == before
        assert b.state.value == "queued"


class TestExplainWithLedger:
    """With the decision ledger on, explain() carries the causal record."""

    def _build(self):
        from repro.obs import Telemetry

        telemetry = Telemetry(decision_ledger=True)
        system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
        return system

    def test_causal_chain_and_attribution_for_blocked_job(self):
        system = self._build()
        a = system.submit(job(32, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(32, walltime=100.0), FixedRuntimeApp(100.0))
        system.run(until=50.0)
        info = system.scheduler.explain(b)
        kinds = [d["kind"] for d in info["causal_chain"]]
        assert "reservation_create" in kinds
        attribution = info["attribution"]
        assert attribution is not None
        # the whole wait so far is reservation-held (b holds the reservation)
        assert attribution["components"]["reservation_held"] == pytest.approx(
            system.now, abs=1e-9
        )

    def test_explain_deterministic_across_identical_runs(self):
        def run_once():
            system = self._build()
            a = system.submit(job(32, walltime=300.0), FixedRuntimeApp(300.0))
            b = system.submit(job(32, walltime=100.0), FixedRuntimeApp(100.0))
            system.run(until=50.0)
            info = system.scheduler.explain(b)
            # job ids differ between runs (global counter); compare shapes
            return (
                info["blocked_by"],
                [d["kind"] for d in info["causal_chain"]],
                sorted(info["attribution"]["components"]),
                info["attribution"]["wait"],
            )

        assert run_once() == run_once()

    def test_absent_without_ledger(self, system):
        j = system.submit(job(8), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        info = system.scheduler.explain(j)
        assert "causal_chain" not in info
        assert "attribution" not in info
