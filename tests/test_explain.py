"""Tests for scheduler.explain (the checkjob-style diagnostic)."""

import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def job(cores, walltime=100.0, user="u", **kw):
    return Job(request=ResourceRequest(cores=cores), walltime=walltime, user=user, **kw)


class TestExplain:
    def test_running_job(self, system):
        j = system.submit(job(8), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        info = system.scheduler.explain(j)
        assert info["state"] == "running"
        assert info["planned_start"] == 0.0

    def test_blocked_by_resources_with_planned_start(self, system):
        a = system.submit(job(32, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(32, walltime=100.0), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        info = system.scheduler.explain(b)
        assert info["state"] == "queued"
        assert info["blocked_by"] == "resources"
        assert info["planned_start"] == pytest.approx(300.0)
        assert info["queue_position"] == 0

    def test_blocked_by_dependency(self, system):
        a = system.submit(job(4, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(4, depends_on=a.job_id), FixedRuntimeApp(50.0))
        system.run(until=0.0)
        info = system.scheduler.explain(b)
        assert info["blocked_by"] == f"dependency on {a.job_id}"

    def test_blocked_by_throttling(self):
        system = BatchSystem(4, 8, MauiConfig(max_running_jobs_per_user=1))
        a = system.submit(job(4, user="hog"), FixedRuntimeApp(300.0))
        b = system.submit(job(4, user="hog"), FixedRuntimeApp(300.0))
        system.run(until=0.0)
        info = system.scheduler.explain(b)
        assert info["blocked_by"] == "throttling policy"

    def test_impossible_request(self, system):
        j = system.submit(job(64), FixedRuntimeApp(100.0))  # 32-core machine
        system.run(until=0.0)
        info = system.scheduler.explain(j)
        assert info["blocked_by"] == "request can never fit"

    def test_finished_job(self, system):
        j = system.submit(job(8), FixedRuntimeApp(50.0))
        system.run()
        info = system.scheduler.explain(j)
        assert info["state"] == "completed"

    def test_no_side_effects(self, system):
        a = system.submit(job(32, walltime=300.0), FixedRuntimeApp(300.0))
        b = system.submit(job(32, walltime=100.0), FixedRuntimeApp(100.0))
        system.run(until=0.0)
        before = system.scheduler.stats["reservations_created"]
        system.scheduler.explain(b)
        assert system.scheduler.stats["reservations_created"] == before
        assert b.state.value == "queued"
