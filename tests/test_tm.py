"""Tests for the TM interface (tm_dynget / tm_dynfree)."""

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.rms.server import Server
from repro.sim.engine import Engine


@pytest.fixture
def running_ctx():
    """A running 2-node job plus direct access to its TM context."""
    engine = Engine()
    cluster = Cluster.homogeneous(4, 8)
    server = Server(engine, cluster)
    job = Job(
        request=ResourceRequest(cores=8),
        walltime=1000.0,
        flexibility=JobFlexibility.EVOLVING,
    )
    server.submit(job)

    captured = {}

    class Capture:
        def launch(self, ctx):
            captured["ctx"] = ctx

    server._apps[job.job_id] = Capture()
    server.start_job(job, Allocation({0: 4, 1: 4}))
    return engine, cluster, server, job, captured["ctx"]


class TestTMDynget:
    def test_request_reaches_server(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        ctx.tm_dynget(ResourceRequest(cores=4), lambda g: None)
        assert len(server.dyn_queue) == 1
        assert server.dyn_queue[0].request.cores == 4

    def test_second_concurrent_request_rejected(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        ctx.tm_dynget(ResourceRequest(cores=4), lambda g: None)
        with pytest.raises(RuntimeError, match="pending"):
            ctx.tm_dynget(ResourceRequest(cores=4), lambda g: None)

    def test_sequential_requests_allowed(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        ctx.tm_dynget(ResourceRequest(cores=4), lambda g: None)
        server.reject_dynamic(server.dyn_queue[0])
        ctx.tm_dynget(ResourceRequest(cores=4), lambda g: None)  # fine now
        assert len(server.dyn_queue) == 1

    def test_hostlist_grows_after_grant(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        before = len(ctx.hostlist())
        ctx.tm_dynget(ResourceRequest(cores=4), lambda g: None)
        server.grant_dynamic(server.dyn_queue[0], Allocation({2: 4}))
        assert len(ctx.hostlist()) == before + 4
        assert ctx.cores == 12


class TestTMDynfree:
    def test_release_succeeds(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        assert ctx.tm_dynfree({1: 4}) is True
        assert ctx.cores == 4
        assert cluster.used_cores == 4

    def test_release_not_held_returns_false(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        assert ctx.tm_dynfree({3: 2}) is False  # node 3 not in allocation
        assert ctx.cores == 8

    def test_release_too_many_returns_false(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        assert ctx.tm_dynfree({0: 5}) is False

    def test_release_everything_on_ms_node_returns_false(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        # node 0 is the mother superior; stripping it entirely must fail
        assert ctx.tm_dynfree({0: 4}) is False
        assert ctx.cores == 8

    def test_release_empty_returns_false(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        assert ctx.tm_dynfree({}) is False


class TestTMTimers:
    def test_after_cancelled_at_job_end(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        fired = []
        ctx.after(500.0, fired.append, "should not fire")
        server.complete_job(job)
        engine.run()
        assert fired == []

    def test_finish_completes_job(self, running_ctx):
        engine, cluster, server, job, ctx = running_ctx
        ctx.finish()
        assert job.state is JobState.COMPLETED
