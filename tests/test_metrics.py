"""Tests for metrics: busy-core timeline, workload metrics, reports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import MauiConfig
from repro.metrics.report import render_histogram_row, render_series, render_table
from repro.metrics.stats import busy_core_seconds, describe, utilization_timeline
from repro.sim.events import EventKind, TraceLog
from repro.system import BatchSystem


class TestUtilizationTimeline:
    def test_single_job(self):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_START, job_id="a", cores=8)
        trace.record(10.0, EventKind.JOB_END, job_id="a", cores=8)
        times, busy = utilization_timeline(trace)
        assert list(times) == [0.0, 10.0]
        assert list(busy) == [8, 0]

    def test_expansion_and_release(self):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_START, job_id="a", cores=4)
        trace.record(5.0, EventKind.DYN_GRANT, job_id="a", cores=4)
        trace.record(8.0, EventKind.DYN_RELEASE, job_id="a", cores=2)
        trace.record(10.0, EventKind.JOB_END, job_id="a", cores=6)
        times, busy = utilization_timeline(trace)
        assert list(busy) == [4, 8, 6, 0]

    def test_preempt_releases(self):
        trace = TraceLog()
        trace.record(0.0, EventKind.BACKFILL_START, job_id="a", cores=8)
        trace.record(4.0, EventKind.PREEMPT, job_id="a", cores=8)
        _, busy = utilization_timeline(trace)
        assert list(busy) == [8, 0]

    def test_inconsistent_trace_rejected(self):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_END, job_id="a", cores=8)
        with pytest.raises(ValueError):
            utilization_timeline(trace)

    def test_empty_trace(self):
        times, busy = utilization_timeline(TraceLog())
        assert list(busy) == [0]

    def test_busy_core_seconds_integral(self):
        trace = TraceLog()
        trace.record(0.0, EventKind.JOB_START, job_id="a", cores=10)
        trace.record(10.0, EventKind.JOB_END, job_id="a", cores=10)
        assert busy_core_seconds(trace, 0.0, 10.0) == 100.0
        assert busy_core_seconds(trace, 5.0, 15.0) == 50.0
        assert busy_core_seconds(trace, 10.0, 20.0) == 0.0
        assert busy_core_seconds(trace, 5.0, 5.0) == 0.0


class TestWorkloadMetrics:
    def _run_simple(self):
        system = BatchSystem(2, 8, MauiConfig())
        jobs = [
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="a"),
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="b"),
        ]
        for job in jobs:
            system.submit(job, FixedRuntimeApp(100.0))
        system.run()
        return system, jobs

    def test_workload_time(self):
        system, _ = self._run_simple()
        m = system.metrics()
        assert m.workload_time == 100.0
        assert m.workload_time_minutes == pytest.approx(100 / 60)

    def test_full_utilization(self):
        system, _ = self._run_simple()
        assert system.metrics().utilization == pytest.approx(1.0)

    def test_half_utilization(self):
        system = BatchSystem(2, 8, MauiConfig())
        system.submit(
            Job(request=ResourceRequest(cores=8), walltime=100.0, user="a"),
            FixedRuntimeApp(100.0),
        )
        system.run()
        assert system.metrics().utilization == pytest.approx(0.5)

    def test_throughput(self):
        system, _ = self._run_simple()
        m = system.metrics()
        assert m.completed_jobs == 2
        assert m.throughput_jobs_per_minute == pytest.approx(2 / (100 / 60))

    def test_throughput_increase(self):
        system, _ = self._run_simple()
        m = system.metrics()
        assert m.throughput_increase_vs(m) == 0.0

    def test_wait_series_in_submission_order(self):
        system = BatchSystem(1, 8, MauiConfig())
        a = Job(request=ResourceRequest(cores=8), walltime=50.0, user="a")
        b = Job(request=ResourceRequest(cores=8), walltime=50.0, user="b")
        system.submit(a, FixedRuntimeApp(50.0))
        system.submit(b, FixedRuntimeApp(50.0))
        system.run()
        series = system.metrics().wait_times_by_submission()
        assert series == [(0, 0.0), (1, 50.0)]

    def test_mean_wait_and_turnaround(self):
        system, _ = self._run_simple()
        m = system.metrics()
        assert m.mean_wait == 0.0
        assert m.mean_turnaround == 100.0

    def test_records_for_user(self):
        system, _ = self._run_simple()
        assert len(system.metrics().records_for_user("a")) == 1


class TestDescribe:
    def test_empty(self):
        assert describe([])["count"] == 0

    def test_basic_stats(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert stats["max"] == 4.0


class TestReports:
    def test_render_table_alignment(self):
        text = render_table(["Name", "Value"], [["a", 1], ["bb", 22.5]])
        lines = text.splitlines()
        assert "Name" in lines[0]
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_render_table_with_title(self):
        text = render_table(["X"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_render_series_subsampling(self):
        points = [(float(i), float(i * 2)) for i in range(100)]
        text = render_series("s", points, max_points=10)
        assert "every" in text
        assert len(text.splitlines()) < 30

    def test_render_histogram_row(self):
        row = render_histogram_row("label", 5.0, scale=10.0, width=10)
        assert row.count("#") == 5

    def test_render_histogram_row_zero_scale(self):
        row = render_histogram_row("label", 5.0, scale=0.0, width=10)
        assert row.count("#") == 0


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=1.0, max_value=100.0),
            st.integers(min_value=1, max_value=16),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_property_busy_integral_matches_job_areas(jobs):
    """The busy-core integral equals the sum of cores x duration per job."""
    trace = TraceLog()
    events = []
    for i, (start, dur, cores) in enumerate(jobs):
        events.append((start, EventKind.JOB_START, f"j{i}", cores))
        events.append((start + dur, EventKind.JOB_END, f"j{i}", cores))
    for t, kind, jid, cores in sorted(events, key=lambda e: e[0]):
        trace.record(t, kind, job_id=jid, cores=cores)
    expected = sum(dur * cores for _, dur, cores in jobs)
    assert busy_core_seconds(trace, 0.0, 1e9) == pytest.approx(expected)


class TestBoundedSlowdown:
    def test_no_wait_is_one(self):
        system = BatchSystem(2, 8, MauiConfig())
        system.submit(
            Job(request=ResourceRequest(cores=8), walltime=100.0), FixedRuntimeApp(100.0)
        )
        system.run()
        assert system.metrics().mean_bounded_slowdown() == pytest.approx(1.0)

    def test_waiting_doubles_slowdown(self):
        system = BatchSystem(1, 8, MauiConfig())
        for _ in range(2):
            system.submit(
                Job(request=ResourceRequest(cores=8), walltime=100.0),
                FixedRuntimeApp(100.0),
            )
        system.run()
        values = sorted(system.metrics().bounded_slowdowns())
        assert values == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_tau_clamps_short_jobs(self):
        system = BatchSystem(1, 8, MauiConfig())
        a = Job(request=ResourceRequest(cores=8), walltime=1000.0)
        system.submit(a, FixedRuntimeApp(1000.0))
        short = Job(request=ResourceRequest(cores=8), walltime=10.0)
        system.submit(short, FixedRuntimeApp(1.0))
        system.run()
        # short job waited 1000s and ran 1s: unclamped slowdown would be 1001
        values = system.metrics().bounded_slowdowns(tau=10.0)
        assert max(values) == pytest.approx((1000.0 + 1.0) / 10.0)

    def test_esp_slowdown_metric_caveat(self):
        """Bounded slowdown penalises dynamic allocation by construction.

        Grants shrink evolving jobs' runtimes, so the same wait divides by a
        smaller denominator: Dyn-HP's mean slowdown is NOT below Static's
        even though its mean wait and makespan are — a textbook reason the
        paper reports waits and makespan rather than slowdown.  This test
        pins the caveat so nobody "fixes" it into a misleading assertion.
        """
        from repro.experiments.runner import run_esp_configuration_cached

        static = run_esp_configuration_cached("Static", seed=2014).metrics
        dyn = run_esp_configuration_cached("Dyn-HP", seed=2014).metrics
        assert dyn.mean_wait < static.mean_wait
        assert all(v >= 1.0 for v in dyn.bounded_slowdowns())
        # within a few percent of each other despite the denominator shift
        ratio = dyn.mean_bounded_slowdown() / static.mean_bounded_slowdown()
        assert 0.9 < ratio < 1.1
