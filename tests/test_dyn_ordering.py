"""Tests for dynamic-request ordering policies.

The paper services dynamic requests in FIFO order and lists "a fair
prioritization mechanism between dynamic requests" as future work; the
``dynamic_request_order`` knob implements that outlook.
"""

import pytest

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import MauiConfig
from repro.system import BatchSystem


def evolving(cores, extra, user, set_seconds=1000.0):
    return Job(
        request=ResourceRequest(cores=cores),
        walltime=set_seconds,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=extra)),
    )


def contended_system(order: str) -> tuple[BatchSystem, Job, Job]:
    """Two simultaneous requests (first: 4 cores, second: 2), 4 cores idle."""
    system = BatchSystem(
        2, 8, MauiConfig(dynamic_request_order=order)
    )
    first = evolving(4, 4, "heavy")
    second = evolving(4, 2, "light")
    system.submit(first, EvolvingWorkApp(1000.0))
    system.submit(second, EvolvingWorkApp(1000.0))
    system.submit(
        Job(request=ResourceRequest(cores=4), walltime=1000.0, user="fill"),
        FixedRuntimeApp(1000.0),
    )
    return system, first, second


class TestOrderingPolicies:
    def test_fifo_serves_first_submitter(self):
        system, first, second = contended_system("fifo")
        system.run(until=200.0)
        assert first.dyn_granted == 1
        assert second.dyn_granted == 0

    def test_smallest_first_serves_cheap_request(self):
        system, first, second = contended_system("smallest_first")
        system.run(until=200.0)
        # the 2-core request is served first; the 4-core one no longer fits
        assert second.dyn_granted == 1
        assert first.dyn_granted == 0

    def test_fairshare_prefers_light_user(self):
        system = BatchSystem(2, 8, MauiConfig(dynamic_request_order="fairshare"))
        # "heavy" has a long history of usage before the contention moment
        hog = Job(request=ResourceRequest(cores=8), walltime=500.0, user="heavy")
        system.submit(hog, FixedRuntimeApp(500.0))
        system.run()  # heavy accrues 8 cores x 500 s of usage
        heavy_job = evolving(4, 4, "heavy")
        light_job = evolving(4, 4, "light")
        system.submit(heavy_job, EvolvingWorkApp(1000.0))
        system.submit(light_job, EvolvingWorkApp(1000.0))
        system.submit(
            Job(request=ResourceRequest(cores=4), walltime=1000.0, user="fill"),
            FixedRuntimeApp(1000.0),
        )
        system.run(until=800.0)
        # both request at the same instant; the lighter user wins the 4 cores
        assert light_job.dyn_granted == 1
        assert heavy_job.dyn_granted == 0

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            MauiConfig(dynamic_request_order="lifo")
